#include "testing/fault_script.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strutil.h"

namespace leakdet::testing {

namespace {

/// SplitMix64 finalizer: decorrelates connection ids before seeding each
/// plan's Rng, so consecutive ids get unrelated fault streams.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

StatusOr<double> ParseProbability(std::string_view value) {
  std::string buf(value);
  errno = 0;
  char* end = nullptr;
  double d = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::InvalidArgument("bad numeric value: " + buf);
  }
  if (d < 0.0 || d > 1.0) {
    return Status::InvalidArgument("probability out of [0,1]: " + buf);
  }
  return d;
}

void AppendKv(std::ostringstream* out, const char* key, double v) {
  *out << key << "=" << v << "\n";
}

}  // namespace

FaultPlan::ReadDecision FaultPlan::NextRead() {
  ReadDecision decision;
  if (!scripted_) return decision;
  if (profile_.eintr > 0 && rng_.Bernoulli(profile_.eintr)) {
    decision.eintrs = 1 + static_cast<uint32_t>(rng_.UniformInt(
                              profile_.max_eintr == 0 ? 1 : profile_.max_eintr));
  }
  if (profile_.reset > 0 && rng_.Bernoulli(profile_.reset)) {
    decision.reset = true;
    return decision;  // nothing after a reset matters
  }
  if (profile_.timeout > 0 && rng_.Bernoulli(profile_.timeout)) {
    decision.timeout = true;
  }
  if (profile_.delay > 0 && rng_.Bernoulli(profile_.delay)) {
    decision.delay_ns = profile_.delay_ns;
  }
  if (profile_.short_read > 0 && rng_.Bernoulli(profile_.short_read)) {
    decision.max_bytes = profile_.short_chunk == 0 ? 1 : profile_.short_chunk;
  }
  if (profile_.corrupt > 0 && rng_.Bernoulli(profile_.corrupt)) {
    decision.corrupt = true;
  }
  return decision;
}

FaultPlan::WriteDecision FaultPlan::NextWrite() {
  WriteDecision decision;
  if (!scripted_) return decision;
  if (profile_.eintr > 0 && rng_.Bernoulli(profile_.eintr)) {
    decision.eintrs = 1 + static_cast<uint32_t>(rng_.UniformInt(
                              profile_.max_eintr == 0 ? 1 : profile_.max_eintr));
  }
  if (profile_.reset > 0 && rng_.Bernoulli(profile_.reset)) {
    decision.reset = true;
    return decision;
  }
  if (profile_.short_write > 0 && rng_.Bernoulli(profile_.short_write)) {
    decision.chunk = profile_.short_chunk == 0 ? 1 : profile_.short_chunk;
  }
  if (profile_.corrupt > 0 && rng_.Bernoulli(profile_.corrupt)) {
    decision.corrupt = true;
  }
  return decision;
}

StatusOr<FaultScript> FaultScript::Parse(std::string_view text) {
  FaultScript script;
  script.name_ = "unnamed";
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault schedule line " +
                                     std::to_string(line_no) + ": missing '='");
    }
    std::string_view key = TrimWhitespace(line.substr(0, eq));
    std::string_view value = TrimWhitespace(line.substr(eq + 1));
    FaultProfile* p = &script.profile_;
    Status bad = Status::OK();
    auto prob = [&](double* field) {
      auto parsed = ParseProbability(value);
      if (!parsed.ok()) {
        bad = parsed.status();
        return;
      }
      *field = *parsed;
    };
    auto uint = [&](auto* field) {
      auto parsed = ParseUint64(value);
      if (!parsed.ok()) {
        bad = parsed.status();
        return;
      }
      *field = static_cast<std::remove_reference_t<decltype(*field)>>(*parsed);
    };
    if (key == "name") {
      script.name_ = std::string(value);
    } else if (key == "seed") {
      uint(&script.seed_);
    } else if (key == "short_read") {
      prob(&p->short_read);
    } else if (key == "short_write") {
      prob(&p->short_write);
    } else if (key == "eintr") {
      prob(&p->eintr);
    } else if (key == "timeout") {
      prob(&p->timeout);
    } else if (key == "reset") {
      prob(&p->reset);
    } else if (key == "delay") {
      prob(&p->delay);
    } else if (key == "corrupt") {
      prob(&p->corrupt);
    } else if (key == "short_chunk") {
      uint(&p->short_chunk);
    } else if (key == "max_eintr") {
      uint(&p->max_eintr);
    } else if (key == "delay_ns") {
      uint(&p->delay_ns);
    } else if (key == "trainer_kill_every") {
      uint(&p->trainer_kill_every);
    } else if (key == "burst_multiplier") {
      uint(&p->burst_multiplier);
    } else {
      return Status::InvalidArgument("fault schedule line " +
                                     std::to_string(line_no) +
                                     ": unknown key '" + std::string(key) +
                                     "'");
    }
    if (!bad.ok()) {
      return Status::InvalidArgument("fault schedule line " +
                                     std::to_string(line_no) + ": " +
                                     bad.message());
    }
  }
  return script;
}

std::string FaultScript::Serialize() const {
  std::ostringstream out;
  out << "# leakdet fault schedule (see docs/TESTING.md)\n";
  out << "name=" << name_ << "\n";
  out << "seed=" << seed_ << "\n";
  AppendKv(&out, "short_read", profile_.short_read);
  AppendKv(&out, "short_write", profile_.short_write);
  AppendKv(&out, "eintr", profile_.eintr);
  AppendKv(&out, "timeout", profile_.timeout);
  AppendKv(&out, "reset", profile_.reset);
  AppendKv(&out, "delay", profile_.delay);
  AppendKv(&out, "corrupt", profile_.corrupt);
  out << "short_chunk=" << profile_.short_chunk << "\n";
  out << "max_eintr=" << profile_.max_eintr << "\n";
  out << "delay_ns=" << profile_.delay_ns << "\n";
  out << "trainer_kill_every=" << profile_.trainer_kill_every << "\n";
  out << "burst_multiplier=" << profile_.burst_multiplier << "\n";
  return out.str();
}

StatusOr<FaultScript> FaultScript::Builtin(std::string_view name) {
  FaultProfile p;
  if (name == "none") {
    // all-zero profile: the faithful-transport baseline
  } else if (name == "short-io") {
    p.short_read = 0.85;
    p.short_write = 0.5;
    p.eintr = 0.6;
    p.delay = 0.2;
    p.short_chunk = 3;
    p.max_eintr = 3;
  } else if (name == "reset-storm") {
    p.reset = 0.2;
    p.corrupt = 0.2;
    p.timeout = 0.15;
    p.short_read = 0.3;
    p.short_chunk = 7;
  } else if (name == "swap-crash") {
    p.short_read = 0.3;
    p.eintr = 0.3;
    p.short_chunk = 11;
    p.trainer_kill_every = 2;
    p.burst_multiplier = 2;
  } else {
    return Status::NotFound("no builtin fault schedule named '" +
                            std::string(name) + "'");
  }
  return FaultScript(std::string(name), /*seed=*/1, p);
}

std::vector<std::string> FaultScript::BuiltinNames() {
  return {"none", "short-io", "reset-storm", "swap-crash"};
}

StatusOr<FaultScript> FaultScript::Load(const std::string& spec) {
  std::ifstream file(spec);
  if (file.good()) {
    std::ostringstream content;
    content << file.rdbuf();
    return Parse(content.str());
  }
  auto builtin = Builtin(spec);
  if (builtin.ok()) return builtin;
  return Status::NotFound("'" + spec +
                          "' is neither a readable schedule file nor a "
                          "builtin schedule name");
}

FaultPlan FaultScript::PlanForConnection(uint64_t conn_id) const {
  return FaultPlan(Mix(seed_ ^ Mix(conn_id)), profile_);
}

}  // namespace leakdet::testing
