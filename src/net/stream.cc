#include "net/stream.h"

#include <algorithm>

namespace leakdet::net {

StatusOr<std::string> Stream::ReadUntilClose(size_t limit) {
  std::string out;
  while (out.size() < limit) {
    // Never request past the limit: overshooting would buffer bytes the
    // caller refuses anyway and misreport an exactly-limit-sized message.
    size_t want = std::min<size_t>(16384, limit - out.size());
    LEAKDET_ASSIGN_OR_RETURN(std::string chunk, ReadSome(want));
    if (chunk.empty()) return out;
    out += chunk;
  }
  // The peer delivered exactly `limit` bytes. That is within bounds; only an
  // actual further byte makes the message oversized.
  LEAKDET_ASSIGN_OR_RETURN(std::string extra, ReadSome(1));
  if (extra.empty()) return out;
  return Status::OutOfRange("peer sent more than the read limit");
}

}  // namespace leakdet::net
