#ifndef LEAKDET_NET_ORG_REGISTRY_H_
#define LEAKDET_NET_ORG_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.h"
#include "util/statusor.h"

namespace leakdet::net {

/// A CIDR prefix ("173.194.0.0/16").
struct CidrPrefix {
  Ipv4Address base;
  int length = 0;  ///< prefix length in bits, 0..32

  /// Parses "a.b.c.d/len". The base is masked to the prefix length.
  static StatusOr<CidrPrefix> Parse(std::string_view text);

  /// True iff `ip` falls inside this prefix.
  bool Contains(Ipv4Address ip) const;

  std::string ToString() const;
};

/// WHOIS-style registry mapping IP prefixes to owning organizations.
///
/// §VI of the paper observes that two close IP addresses can belong to
/// different organizations, making the raw longest-common-prefix distance
/// erroneously small, and suggests "a registration information process such
/// as WHOIS" to verify destination distances. This registry is that
/// verification oracle: a binary radix (Patricia-style) trie over IPv4
/// prefixes with longest-prefix-match lookup, as allocation databases use.
class OrgRegistry {
 public:
  OrgRegistry();
  ~OrgRegistry();
  OrgRegistry(OrgRegistry&&) noexcept;
  OrgRegistry& operator=(OrgRegistry&&) noexcept;

  /// Registers `prefix` as owned by `organization`. More-specific prefixes
  /// shadow less-specific ones (standard allocation semantics). Re-adding
  /// the same prefix overwrites the owner.
  void Add(const CidrPrefix& prefix, std::string organization);

  /// Convenience: Add from "a.b.c.d/len" text.
  Status AddCidr(std::string_view cidr, std::string organization);

  /// Longest-prefix-match lookup: the owning organization of `ip`, if any
  /// registered prefix covers it.
  std::optional<std::string_view> Lookup(Ipv4Address ip) const;

  /// True iff both addresses are covered and by the same organization.
  bool SameOrganization(Ipv4Address a, Ipv4Address b) const;

  /// Number of registered prefixes.
  size_t size() const { return size_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace leakdet::net

#endif  // LEAKDET_NET_ORG_REGISTRY_H_
