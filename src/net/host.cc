#include "net/host.h"

#include <array>

#include "util/strutil.h"

namespace leakdet::net {

std::string NormalizeHost(std::string_view host) {
  std::string_view trimmed = TrimWhitespace(host);
  if (!trimmed.empty() && trimmed.back() == '.') {
    trimmed.remove_suffix(1);
  }
  return AsciiToLower(trimmed);
}

bool IsValidHostname(std::string_view host) {
  if (host.empty() || host.size() > 253) return false;
  for (auto label : Split(host, '.')) {
    if (label.empty() || label.size() > 63) return false;
    if (label.front() == '-' || label.back() == '-') return false;
    for (char c : label) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-';
      if (!ok) return false;
    }
  }
  return true;
}

std::vector<std::string_view> HostLabels(std::string_view host) {
  return Split(host, '.');
}

namespace {

// Multi-label public suffixes relevant to the paper's (Japanese-market)
// dataset. Checked before single-label TLDs.
constexpr std::array<std::string_view, 10> kTwoLabelSuffixes = {
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "ad.jp", "ed.jp", "gr.jp", "lg.jp", "com.cn",
};

bool EndsWithSuffix(std::string_view host, std::string_view suffix) {
  if (host.size() < suffix.size()) return false;
  if (host.size() == suffix.size()) return host == suffix;
  return host.ends_with(suffix) &&
         host[host.size() - suffix.size() - 1] == '.';
}

}  // namespace

std::string RegistrableDomain(std::string_view host) {
  std::string norm = NormalizeHost(host);
  std::vector<std::string_view> labels = HostLabels(norm);
  if (labels.size() <= 1) return norm;

  size_t suffix_labels = 1;  // default: the last label is the public suffix
  for (auto two : kTwoLabelSuffixes) {
    if (EndsWithSuffix(norm, two)) {
      suffix_labels = 2;
      break;
    }
  }
  size_t want = suffix_labels + 1;  // suffix + one registrable label
  if (labels.size() <= want) return norm;
  std::vector<std::string_view> tail(labels.end() - static_cast<long>(want),
                                     labels.end());
  return Join(tail, ".");
}

}  // namespace leakdet::net
