#ifndef LEAKDET_NET_TCP_H_
#define LEAKDET_NET_TCP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/stream.h"
#include "util/statusor.h"

namespace leakdet::net {

/// A connected TCP stream (blocking I/O, RAII close). Move-only. The
/// production implementation of the net::Stream seam.
class TcpConnection : public Stream {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool ok() const override { return fd_ >= 0; }

  /// Writes the whole buffer, looping over partial/short sends and EINTR.
  /// Uses MSG_NOSIGNAL so a peer disconnect surfaces as an IOError status
  /// instead of SIGPIPE.
  Status WriteAll(std::string_view data) override;

  /// Bounds every subsequent read (SO_RCVTIMEO); a stalled peer then yields
  /// IOError("read timed out") instead of blocking the serving thread
  /// forever. 0 restores blocking reads.
  Status SetReadTimeout(int timeout_ms) override;

  /// Reads at most `max_bytes`, retrying EINTR; "" on orderly peer close.
  StatusOr<std::string> ReadSome(size_t max_bytes) override;

  /// Half-closes the write side (signals end-of-request to the peer).
  void ShutdownWrite() override;

  void Close() override;

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. Move-only. The production
/// implementation of the net::Listener seam.
class TcpListener : public Listener {
 public:
  /// Binds and listens on loopback. `port` 0 picks an ephemeral port.
  static StatusOr<TcpListener> Bind(uint16_t port);

  TcpListener() = default;
  ~TcpListener() override;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (useful after ephemeral binds).
  uint16_t port() const override { return port_; }

  /// Waits up to `timeout_ms` for a connection. NotFound on timeout,
  /// FailedPrecondition after Close().
  StatusOr<TcpConnection> Accept(int timeout_ms);

  /// Listener-interface form of Accept.
  StatusOr<std::unique_ptr<Stream>> AcceptStream(int timeout_ms) override;

  void Close() override;
  bool ok() const override { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
StatusOr<TcpConnection> TcpConnectLoopback(uint16_t port);

}  // namespace leakdet::net

#endif  // LEAKDET_NET_TCP_H_
