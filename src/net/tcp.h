#ifndef LEAKDET_NET_TCP_H_
#define LEAKDET_NET_TCP_H_

#include <cstdint>
#include <string>

#include "util/statusor.h"

namespace leakdet::net {

/// A connected TCP stream (blocking I/O, RAII close). Move-only.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool ok() const { return fd_ >= 0; }

  /// Writes the whole buffer, looping over partial/short sends. Uses
  /// MSG_NOSIGNAL so a peer disconnect surfaces as an IOError status
  /// instead of SIGPIPE.
  Status WriteAll(std::string_view data);

  /// Bounds every subsequent read (SO_RCVTIMEO); a stalled peer then yields
  /// IOError("read timed out") instead of blocking the serving thread
  /// forever. 0 restores blocking reads.
  Status SetReadTimeout(int timeout_ms);

  /// Reads at most `max_bytes`; "" on orderly peer close.
  StatusOr<std::string> ReadSome(size_t max_bytes = 4096);

  /// Reads until the peer closes (bounded by `limit` bytes).
  StatusOr<std::string> ReadUntilClose(size_t limit = 1 << 22);

  /// Half-closes the write side (signals end-of-request to the peer).
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. Move-only.
class TcpListener {
 public:
  /// Binds and listens on loopback. `port` 0 picks an ephemeral port.
  static StatusOr<TcpListener> Bind(uint16_t port);

  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (useful after ephemeral binds).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection. NotFound on timeout,
  /// FailedPrecondition after Close().
  StatusOr<TcpConnection> Accept(int timeout_ms);

  void Close();
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
StatusOr<TcpConnection> TcpConnectLoopback(uint16_t port);

}  // namespace leakdet::net

#endif  // LEAKDET_NET_TCP_H_
