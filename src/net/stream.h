#ifndef LEAKDET_NET_STREAM_H_
#define LEAKDET_NET_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/statusor.h"

namespace leakdet::net {

/// Narrow byte-stream seam between protocol code (the feed server and the
/// device-side fetch helpers) and its transport. Production traffic runs on
/// TcpConnection; the deterministic test harness injects
/// testing::ScriptedStream, which replays seeded fault schedules (short
/// reads, resets, delayed or corrupted bytes) against the same contract.
///
/// Contract notes, shared by every implementation:
///  - ReadSome returns "" exactly once the peer has half-closed and the
///    buffered bytes are drained (orderly EOF);
///  - transient interruptions (EINTR) are absorbed internally — they never
///    surface to the caller;
///  - a read deadline expiring surfaces as IOError("read timed out").
class Stream {
 public:
  virtual ~Stream() = default;

  /// Writes the whole buffer, looping over partial/short sends.
  virtual Status WriteAll(std::string_view data) = 0;

  /// Bounds every subsequent read; a stalled peer then yields
  /// IOError("read timed out"). 0 restores unbounded blocking reads.
  virtual Status SetReadTimeout(int timeout_ms) = 0;

  /// Reads at most `max_bytes`; "" on orderly peer close.
  virtual StatusOr<std::string> ReadSome(size_t max_bytes = 4096) = 0;

  /// Half-closes the write side (signals end-of-request to the peer).
  virtual void ShutdownWrite() = 0;

  virtual void Close() = 0;

  virtual bool ok() const = 0;

  /// Reads until the peer closes, bounded by `limit` bytes. A peer that
  /// sends exactly `limit` bytes and then closes is within the limit;
  /// OutOfRange is returned only when more bytes actually follow.
  StatusOr<std::string> ReadUntilClose(size_t limit = 1 << 22);
};

/// Accept-side counterpart of Stream: produces connected streams. Production
/// code uses TcpListener; tests inject testing::ScriptedListener to feed the
/// server scripted connections.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_ms` for a connection. NotFound on timeout,
  /// FailedPrecondition after Close().
  virtual StatusOr<std::unique_ptr<Stream>> AcceptStream(int timeout_ms) = 0;

  /// The bound port (0 for non-TCP listeners).
  virtual uint16_t port() const = 0;

  virtual void Close() = 0;

  virtual bool ok() const = 0;
};

}  // namespace leakdet::net

#endif  // LEAKDET_NET_STREAM_H_
