#ifndef LEAKDET_NET_HOST_H_
#define LEAKDET_NET_HOST_H_

#include <string>
#include <string_view>
#include <vector>

namespace leakdet::net {

/// Canonicalizes an FQDN: ASCII-lowercase, trailing dot removed, surrounding
/// whitespace trimmed. No IDN handling (the paper's dataset is plain ASCII).
std::string NormalizeHost(std::string_view host);

/// True iff `host` is a syntactically valid hostname: dot-separated labels of
/// [A-Za-z0-9-], 1..63 chars, not starting/ending with '-', total <= 253.
bool IsValidHostname(std::string_view host);

/// Splits a normalized host into labels ("a.b.c" -> {"a","b","c"}).
std::vector<std::string_view> HostLabels(std::string_view host);

/// Registrable domain ("site": eTLD+1) using a built-in suffix list covering
/// the TLDs/second-level suffixes seen in the paper's dataset (jp
/// second-level domains such as co.jp/ne.jp/or.jp, plus generic TLDs).
/// "ads.g.doubleclick.net" -> "doubleclick.net";
/// "img.yahoo.co.jp"       -> "yahoo.co.jp".
/// A bare suffix or unrecognized single label is returned unchanged.
std::string RegistrableDomain(std::string_view host);

}  // namespace leakdet::net

#endif  // LEAKDET_NET_HOST_H_
