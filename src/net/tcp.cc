#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace leakdet::net {

namespace {
Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpConnection::WriteAll(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  size_t written = 0;
  while (written < data.size()) {
    // send(MSG_NOSIGNAL) instead of write(): a peer that disconnects
    // mid-response must surface as EPIPE here, not as a process-killing
    // SIGPIPE in whichever thread happened to be serving it.
    ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("write timed out");
      }
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::SetReadTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

StatusOr<std::string> TcpConnection::ReadSome(size_t max_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  std::string buf(max_bytes, '\0');
  while (true) {
    ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("read timed out");
      }
      return Errno("read");
    }
    buf.resize(static_cast<size_t>(n));
    return buf;
  }
}

void TcpConnection::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<TcpConnection> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::NotFound("accept interrupted");
    return Errno("poll");
  }
  if (ready == 0) return Status::NotFound("accept timeout");
  int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return Errno("accept");
  return TcpConnection(conn);
}

StatusOr<std::unique_ptr<Stream>> TcpListener::AcceptStream(int timeout_ms) {
  LEAKDET_ASSIGN_OR_RETURN(TcpConnection conn, Accept(timeout_ms));
  return std::unique_ptr<Stream>(
      std::make_unique<TcpConnection>(std::move(conn)));
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<TcpConnection> TcpConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Errno("connect");
  }
  return TcpConnection(fd);
}

}  // namespace leakdet::net
