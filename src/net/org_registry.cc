#include "net/org_registry.h"

#include "util/strutil.h"

namespace leakdet::net {

StatusOr<CidrPrefix> CidrPrefix::Parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument("CIDR needs a /length");
  }
  CidrPrefix prefix;
  LEAKDET_ASSIGN_OR_RETURN(prefix.base,
                           Ipv4Address::Parse(text.substr(0, slash)));
  LEAKDET_ASSIGN_OR_RETURN(uint64_t len,
                           ParseUint64(text.substr(slash + 1)));
  if (len > 32) return Status::InvalidArgument("prefix length > 32");
  prefix.length = static_cast<int>(len);
  // Mask the base to the prefix.
  uint32_t mask =
      prefix.length == 0 ? 0 : (~uint32_t{0} << (32 - prefix.length));
  prefix.base = Ipv4Address(prefix.base.value() & mask);
  return prefix;
}

bool CidrPrefix::Contains(Ipv4Address ip) const {
  if (length == 0) return true;
  uint32_t mask = ~uint32_t{0} << (32 - length);
  return (ip.value() & mask) == base.value();
}

std::string CidrPrefix::ToString() const {
  return base.ToString() + "/" + std::to_string(length);
}

/// Binary trie node; one child per bit. An owner set on an interior node
/// marks a registered prefix ending there.
struct OrgRegistry::Node {
  std::unique_ptr<Node> child[2];
  std::optional<std::string> owner;
};

OrgRegistry::OrgRegistry() : root_(new Node) {}
OrgRegistry::~OrgRegistry() = default;
OrgRegistry::OrgRegistry(OrgRegistry&&) noexcept = default;
OrgRegistry& OrgRegistry::operator=(OrgRegistry&&) noexcept = default;

void OrgRegistry::Add(const CidrPrefix& prefix, std::string organization) {
  Node* node = root_.get();
  for (int bit = 0; bit < prefix.length; ++bit) {
    int b = (prefix.base.value() >> (31 - bit)) & 1;
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->owner.has_value()) ++size_;
  node->owner = std::move(organization);
}

Status OrgRegistry::AddCidr(std::string_view cidr, std::string organization) {
  LEAKDET_ASSIGN_OR_RETURN(CidrPrefix prefix, CidrPrefix::Parse(cidr));
  Add(prefix, std::move(organization));
  return Status::OK();
}

std::optional<std::string_view> OrgRegistry::Lookup(Ipv4Address ip) const {
  const Node* node = root_.get();
  std::optional<std::string_view> best;
  if (node->owner) best = *node->owner;
  for (int bit = 0; bit < 32 && node; ++bit) {
    int b = (ip.value() >> (31 - bit)) & 1;
    node = node->child[b].get();
    if (node && node->owner) best = *node->owner;
  }
  return best;
}

bool OrgRegistry::SameOrganization(Ipv4Address a, Ipv4Address b) const {
  auto oa = Lookup(a);
  if (!oa) return false;
  auto ob = Lookup(b);
  return ob && *oa == *ob;
}

}  // namespace leakdet::net
