#ifndef LEAKDET_NET_ENDPOINT_H_
#define LEAKDET_NET_ENDPOINT_H_

#include <cstdint>
#include <string>

#include "net/ipv4.h"

namespace leakdet::net {

/// Destination of an HTTP packet as the paper defines it (§IV-B):
/// p_n = {ip_n, port_n, host_n}.
struct Endpoint {
  Ipv4Address ip;
  uint16_t port = 80;
  std::string host;  ///< normalized FQDN

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.ip == b.ip && a.port == b.port && a.host == b.host;
  }
};

}  // namespace leakdet::net

#endif  // LEAKDET_NET_ENDPOINT_H_
