#ifndef LEAKDET_NET_IPV4_H_
#define LEAKDET_NET_IPV4_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace leakdet::net {

/// An IPv4 address as a host-order 32-bit value with dotted-quad parsing and
/// longest-common-prefix support (used by the paper's destination distance,
/// §IV-B).
class Ipv4Address {
 public:
  Ipv4Address() : value_(0) {}
  explicit Ipv4Address(uint32_t host_order_value) : value_(host_order_value) {}

  /// Parses strict dotted-quad ("192.0.2.1"); rejects leading-zero octets
  /// longer than one digit, out-of-range octets, and junk.
  static StatusOr<Ipv4Address> Parse(std::string_view text);

  /// Dotted-quad representation.
  std::string ToString() const;

  /// Host-order numeric value.
  uint32_t value() const { return value_; }

  friend bool operator==(Ipv4Address a, Ipv4Address b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(Ipv4Address a, Ipv4Address b) { return !(a == b); }

 private:
  uint32_t value_;
};

/// Number of leading bits shared by `a` and `b` (0..32); the paper's
/// `lmatch` function.
int CommonPrefixBits(Ipv4Address a, Ipv4Address b);

}  // namespace leakdet::net

#endif  // LEAKDET_NET_IPV4_H_
