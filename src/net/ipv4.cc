#include "net/ipv4.h"

#include <bit>

#include "util/strutil.h"

namespace leakdet::net {

StatusOr<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  auto parts = Split(text, '.');
  if (parts.size() != 4) {
    return Status::InvalidArgument("IPv4 address needs 4 octets");
  }
  uint32_t value = 0;
  for (auto part : parts) {
    if (part.empty() || part.size() > 3) {
      return Status::InvalidArgument("bad IPv4 octet length");
    }
    if (part.size() > 1 && part[0] == '0') {
      return Status::InvalidArgument("leading zero in IPv4 octet");
    }
    LEAKDET_ASSIGN_OR_RETURN(uint64_t octet, ParseUint64(part));
    if (octet > 255) return Status::InvalidArgument("IPv4 octet > 255");
    value = (value << 8) | static_cast<uint32_t>(octet);
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  std::string out;
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out += '.';
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

int CommonPrefixBits(Ipv4Address a, Ipv4Address b) {
  uint32_t diff = a.value() ^ b.value();
  if (diff == 0) return 32;
  return std::countl_zero(diff);
}

}  // namespace leakdet::net
