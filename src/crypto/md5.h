#ifndef LEAKDET_CRYPTO_MD5_H_
#define LEAKDET_CRYPTO_MD5_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace leakdet::crypto {

/// Streaming MD5 (RFC 1321). Used to reproduce the hashed-identifier
/// transmissions the paper observes (ANDROID_ID MD5, IMEI MD5, ...).
///
/// Usage:
///   Md5 md5;
///   md5.Update("abc");
///   std::array<uint8_t, 16> digest = md5.Finish();
class Md5 {
 public:
  static constexpr size_t kDigestSize = 16;

  Md5();

  /// Absorbs `data`. May be called repeatedly.
  void Update(std::string_view data);

  /// Finalizes and returns the 16-byte digest. The object must not be used
  /// afterwards except via Reset().
  std::array<uint8_t, kDigestSize> Finish();

  /// Returns the object to its freshly-constructed state.
  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// One-shot lowercase-hex MD5 of `data` (32 hex characters).
std::string Md5Hex(std::string_view data);

/// One-shot uppercase-hex MD5 of `data`.
std::string Md5HexUpper(std::string_view data);

}  // namespace leakdet::crypto

#endif  // LEAKDET_CRYPTO_MD5_H_
