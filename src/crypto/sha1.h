#ifndef LEAKDET_CRYPTO_SHA1_H_
#define LEAKDET_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace leakdet::crypto {

/// Streaming SHA-1 (FIPS 180-4). Used to reproduce the hashed-identifier
/// transmissions the paper observes (ANDROID_ID SHA1, IMEI SHA1).
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;

  Sha1();

  /// Absorbs `data`. May be called repeatedly.
  void Update(std::string_view data);

  /// Finalizes and returns the 20-byte digest.
  std::array<uint8_t, kDigestSize> Finish();

  /// Returns the object to its freshly-constructed state.
  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// One-shot lowercase-hex SHA-1 of `data` (40 hex characters).
std::string Sha1Hex(std::string_view data);

/// One-shot uppercase-hex SHA-1 of `data`.
std::string Sha1HexUpper(std::string_view data);

}  // namespace leakdet::crypto

#endif  // LEAKDET_CRYPTO_SHA1_H_
