#include "crypto/xor_obfuscate.h"

#include <cassert>

#include "util/strutil.h"

namespace leakdet::crypto {

std::string XorObfuscateHex(std::string_view value, std::string_view key) {
  assert(!key.empty());
  std::string mixed;
  mixed.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    mixed += static_cast<char>(static_cast<unsigned char>(value[i]) ^
                               static_cast<unsigned char>(key[i % key.size()]));
  }
  return HexEncode(mixed);
}

std::string XorDeobfuscateHex(std::string_view hex, std::string_view key) {
  assert(!key.empty());
  auto bytes = HexDecode(hex);
  if (!bytes.ok()) return std::string();
  std::string out;
  out.reserve(bytes->size());
  for (size_t i = 0; i < bytes->size(); ++i) {
    out += static_cast<char>(static_cast<unsigned char>((*bytes)[i]) ^
                             static_cast<unsigned char>(key[i % key.size()]));
  }
  return out;
}

}  // namespace leakdet::crypto
