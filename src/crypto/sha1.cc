#include "crypto/sha1.h"

#include <algorithm>
#include <cstring>

#include "util/strutil.h"

namespace leakdet::crypto {

namespace {

constexpr uint32_t kInit[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                               0x10325476u, 0xC3D2E1F0u};

uint32_t Rotl32(uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha1::Update(std::string_view data) {
  total_bytes_ += data.size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  if (buffer_len_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Finish() {
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[72] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                      : (120 - buffer_len_);
  Update(std::string_view(reinterpret_cast<const char*>(pad), pad_len));
  // Big-endian 64-bit bit length.
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(std::string_view(reinterpret_cast<const char*>(len_bytes), 8));

  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

std::string Sha1Hex(std::string_view data) {
  Sha1 sha;
  sha.Update(data);
  auto d = sha.Finish();
  return HexEncode(
      std::string_view(reinterpret_cast<const char*>(d.data()), d.size()));
}

std::string Sha1HexUpper(std::string_view data) {
  return AsciiToUpper(Sha1Hex(data));
}

}  // namespace leakdet::crypto
