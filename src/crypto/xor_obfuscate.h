#ifndef LEAKDET_CRYPTO_XOR_OBFUSCATE_H_
#define LEAKDET_CRYPTO_XOR_OBFUSCATE_H_

#include <string>
#include <string_view>

namespace leakdet::crypto {

/// Repeating-key XOR "encryption" followed by lowercase-hex encoding — the
/// weak obfuscation scheme low-effort ad SDKs apply to identifiers before
/// transmission. §VI argues the signature approach still detects such
/// leakage when one key is shared across applications, because the
/// ciphertext of a fixed identifier is itself invariant; this helper lets
/// the simulator (and the payload check, once the key is known) reproduce
/// that case. `key` must be non-empty.
std::string XorObfuscateHex(std::string_view value, std::string_view key);

/// Inverse of XorObfuscateHex (for tests and key-recovery tooling). Fails
/// open: returns "" on non-hex input.
std::string XorDeobfuscateHex(std::string_view hex, std::string_view key);

}  // namespace leakdet::crypto

#endif  // LEAKDET_CRYPTO_XOR_OBFUSCATE_H_
