#include "store/store_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "match/signature.h"

namespace leakdet::store {

namespace {

/// Wall-time span in ns (steady clock) for the store's stage histograms.
class Timed {
 public:
  explicit Timed(obs::Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~Timed() {
    histogram_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

StoreManager::StoreManager(Dir* dir, std::string dirpath, StoreOptions options)
    : dir_(dir),
      dirpath_(std::move(dirpath)),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::Registry::Default()) {
  append_ns_ = registry_->GetHistogram("store.wal_append_ns");
  sync_ns_ = registry_->GetHistogram("store.wal_sync_ns");
  snapshot_write_ns_ = registry_->GetHistogram("store.snapshot_write_ns");
  appends_ = registry_->GetCounter("store.wal_appends");
  append_errors_ = registry_->GetCounter("store.wal_append_errors");
  syncs_ = registry_->GetCounter("store.wal_syncs");
  sync_errors_ = registry_->GetCounter("store.wal_sync_errors");
  snapshots_written_ = registry_->GetCounter("store.snapshots_written");
  snapshot_errors_ = registry_->GetCounter("store.snapshot_errors");
  compactions_ = registry_->GetCounter("store.compactions");
  segments_removed_ = registry_->GetCounter("store.segments_removed");
  snapshots_removed_ = registry_->GetCounter("store.snapshots_removed");
  last_sequence_gauge_ = registry_->GetGauge("store.wal_last_sequence");
  durable_sequence_gauge_ = registry_->GetGauge("store.wal_durable_sequence");
  segment_id_gauge_ = registry_->GetGauge("store.wal_segment_id");
  segments_created_gauge_ = registry_->GetGauge("store.wal_segments_created");
  append_repairs_gauge_ = registry_->GetGauge("store.wal_append_repairs");
  snapshot_version_gauge_ = registry_->GetGauge("store.snapshot_version");
}

void StoreManager::RefreshWalGauges() {
  last_sequence_gauge_->Set(static_cast<int64_t>(last_sequence()));
  durable_sequence_gauge_->Set(static_cast<int64_t>(durable_sequence()));
  segment_id_gauge_->Set(static_cast<int64_t>(writer_->segment_id()));
  segments_created_gauge_->Set(
      static_cast<int64_t>(writer_->segments_created()));
  append_repairs_gauge_->Set(static_cast<int64_t>(writer_->append_repairs()));
}

StatusOr<uint64_t> StoreManager::Append(FeedRecord record) {
  StatusOr<uint64_t> sequence = [&] {
    Timed timed(append_ns_);
    return writer_->Append(std::move(record));
  }();
  if (sequence.ok()) {
    appends_->Inc();
  } else {
    append_errors_->Inc();
  }
  RefreshWalGauges();
  return sequence;
}

StatusOr<uint64_t> StoreManager::AppendReplicated(FeedRecord record) {
  StatusOr<uint64_t> sequence = [&] {
    Timed timed(append_ns_);
    return writer_->AppendReplicated(std::move(record));
  }();
  if (sequence.ok()) {
    appends_->Inc();
  } else {
    append_errors_->Inc();
  }
  RefreshWalGauges();
  return sequence;
}

Status StoreManager::InstallSnapshot(const SnapshotContents& snapshot) {
  Timed timed(snapshot_write_ns_);
  if (snapshot.last_sequence > last_sequence()) {
    snapshot_errors_->Inc();
    return Status::InvalidArgument(
        "snapshot covers sequence " + std::to_string(snapshot.last_sequence) +
        " but the local log ends at " + std::to_string(last_sequence()));
  }
  // Same ordering as WriteSnapshot: the log must be durable up to what the
  // snapshot claims before the snapshot itself becomes visible.
  Status sync_status = Sync();
  if (!sync_status.ok()) {
    snapshot_errors_->Inc();
    return sync_status;
  }
  Status write_status = WriteSnapshotFile(dir_, dirpath_, snapshot);
  if (!write_status.ok()) {
    snapshot_errors_->Inc();
    return write_status;
  }
  newest_snapshot_name_ =
      SnapshotFileName(snapshot.feed_version, snapshot.last_sequence);
  newest_snapshot_covered_ = snapshot.last_sequence;
  valid_snapshots_.insert(newest_snapshot_name_);
  snapshots_written_->Inc();
  snapshot_version_gauge_->Set(static_cast<int64_t>(snapshot.feed_version));
  return Status::OK();
}

Status StoreManager::Sync() {
  Status status = [&] {
    Timed timed(sync_ns_);
    return writer_->Sync();
  }();
  if (status.ok()) {
    syncs_->Inc();
  } else {
    sync_errors_->Inc();
  }
  RefreshWalGauges();
  return status;
}

std::string DescribeBuildParams(
    const core::SignatureServer::Options& options) {
  const core::PipelineOptions& p = options.pipeline;
  std::string out;
  out += "sample_size=" + std::to_string(p.sample_size);
  out += " cut_height=" + std::to_string(p.cut_height);
  out += " compressor=" + p.compressor;
  out += " normal_corpus_size=" + std::to_string(p.normal_corpus_size);
  out += " seed=" + std::to_string(p.seed);
  out += " retrain_after=" + std::to_string(options.retrain_after);
  out += " max_suspicious_pool=" + std::to_string(options.max_suspicious_pool);
  out += " max_normal_pool=" + std::to_string(options.max_normal_pool);
  return out;
}

StatusOr<std::unique_ptr<StoreManager>> StoreManager::Open(
    Dir* dir, const std::string& dirpath, const StoreOptions& options) {
  LEAKDET_RETURN_IF_ERROR(dir->CreateDir(dirpath));
  std::unique_ptr<StoreManager> store(
      new StoreManager(dir, dirpath, options));
  if (store->options_.keep_snapshots == 0) store->options_.keep_snapshots = 1;
  // Scan-and-repair pass: truncates a torn tail in the newest segment and
  // finds the last valid sequence, after which the writer resumes.
  LEAKDET_ASSIGN_OR_RETURN(
      store->open_scan_,
      ReplayWal(dir, dirpath, /*after_sequence=*/0, nullptr, /*repair=*/true));
  LEAKDET_ASSIGN_OR_RETURN(
      store->writer_,
      WalWriter::Open(dir, dirpath, store->open_scan_.last_sequence + 1,
                      options.wal));
  store->RefreshWalGauges();
  return store;
}

StatusOr<StoreManager::RecoveryStats> StoreManager::Recover(
    core::SignatureServer* server) {
  RecoveryStats stats;
  uint64_t after = 0;
  StatusOr<SnapshotContents> snapshot =
      LoadNewestSnapshot(dir_, dirpath_, nullptr, &stats.snapshots_skipped);
  if (snapshot.ok()) {
    core::SignatureServer::State state;
    state.suspicious = std::move(snapshot->suspicious);
    state.normal = std::move(snapshot->normal);
    state.new_suspicious = snapshot->new_suspicious;
    state.feed_version = snapshot->feed_version;
    LEAKDET_ASSIGN_OR_RETURN(
        state.signatures, match::SignatureSet::Deserialize(snapshot->signatures));
    // Serve-before-replay: Restore() fires the feed observer, so the
    // pre-crash epoch is live before a single WAL record is reapplied.
    server->Restore(std::move(state));
    stats.snapshot_loaded = true;
    stats.snapshot_version = snapshot->feed_version;
    stats.snapshot_sequence = snapshot->last_sequence;
    after = snapshot->last_sequence;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  // Replay the suffix. The log must pick up exactly where the snapshot left
  // off: a first surviving record beyond `after + 1` means acknowledged
  // records were lost to compaction or deletion — refuse to guess.
  bool first = true;
  auto apply = [&](const FeedRecord& record) -> Status {
    if (first && record.sequence != after + 1) {
      return Status::Corruption(
          "WAL gap after snapshot: expected sequence " +
          std::to_string(after + 1) + ", found " +
          std::to_string(record.sequence));
    }
    first = false;
    server->Ingest(record.packet);
    return Status::OK();
  };
  LEAKDET_ASSIGN_OR_RETURN(
      stats.replay, ReplayWal(dir_, dirpath_, after, apply, /*repair=*/false));
  return stats;
}

Status StoreManager::WriteSnapshot(const core::SignatureServer& server) {
  Timed timed(snapshot_write_ns_);
  // Sync first so the snapshot never claims records the log could still
  // lose; after this the durable watermark covers last_sequence().
  Status sync_status = Sync();
  if (!sync_status.ok()) {
    snapshot_errors_->Inc();
    return sync_status;
  }
  SnapshotContents snapshot;
  snapshot.feed_version = server.feed_version();
  snapshot.last_sequence = last_sequence();
  snapshot.new_suspicious = server.new_suspicious();
  snapshot.params = DescribeBuildParams(server.options());
  snapshot.signatures = server.Feed();
  snapshot.suspicious = server.suspicious_pool();
  snapshot.normal = server.normal_pool();
  Status write_status = WriteSnapshotFile(dir_, dirpath_, snapshot);
  if (!write_status.ok()) {
    snapshot_errors_->Inc();
    return write_status;
  }
  newest_snapshot_name_ =
      SnapshotFileName(snapshot.feed_version, snapshot.last_sequence);
  newest_snapshot_covered_ = snapshot.last_sequence;
  valid_snapshots_.insert(newest_snapshot_name_);
  snapshots_written_->Inc();
  snapshot_version_gauge_->Set(static_cast<int64_t>(snapshot.feed_version));
  return Status::OK();
}

StatusOr<StoreManager::CompactStats> StoreManager::Compact() {
  CompactStats stats;
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names, dir_->List(dirpath_));

  // The newest *valid* snapshot defines what is safely folded away. Without
  // one, nothing may be removed. The one WriteSnapshot() produced last is
  // known valid without re-reading it; the disk scan only runs when this
  // instance has never written one (e.g. the CLI compact command).
  std::string newest_name = newest_snapshot_name_;
  uint64_t covered = newest_snapshot_covered_;
  if (newest_name.empty()) {
    StatusOr<SnapshotContents> newest =
        LoadNewestSnapshot(dir_, dirpath_, &newest_name);
    if (!newest.ok()) {
      if (newest.status().code() == StatusCode::kNotFound) return stats;
      return newest.status();
    }
    covered = newest->last_sequence;
    newest_snapshot_name_ = newest_name;
    newest_snapshot_covered_ = covered;
    valid_snapshots_.insert(newest_name);
  }

  // Snapshots: keep the `keep_snapshots` newest valid ones; remove older
  // valid ones and anything that fails to parse (write debris). A snapshot
  // digest-verifies at most once per process — files are immutable after
  // their atomic rename, so a verified name stays verified.
  std::vector<std::string> snapshots;
  for (const std::string& name : names) {
    uint64_t version = 0, sequence = 0;
    if (ParseSnapshotFileName(name, &version, &sequence)) {
      snapshots.push_back(name);
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  size_t kept = 0;
  for (const std::string& name : snapshots) {
    bool keep = false;
    if (name == newest_name) {
      keep = true;
    } else if (kept < options_.keep_snapshots) {
      if (valid_snapshots_.count(name) > 0) {
        keep = true;
      } else {
        StatusOr<std::string> text = dir_->Read(dirpath_ + "/" + name);
        keep = text.ok() && ParseSnapshot(*text).ok();
        if (keep) valid_snapshots_.insert(name);
      }
    }
    if (keep) {
      ++kept;
    } else {
      LEAKDET_RETURN_IF_ERROR(dir_->Remove(dirpath_ + "/" + name));
      valid_snapshots_.erase(name);
      ++stats.snapshots_removed;
    }
  }

  // WAL segments: remove each one (oldest first) whose records all have
  // sequence <= covered. Never the active segment, and stop at the first
  // segment that still holds live records — everything after it does too.
  // Closed segments are immutable, so each is read at most once per process
  // to learn its last sequence; after that the decision is in-memory.
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t id = 0;
    if (ParseSegmentFileName(name, &id)) segments.emplace_back(id, name);
  }
  std::sort(segments.begin(), segments.end());
  const std::string active = SegmentFileName(writer_->segment_id());
  for (const auto& [id, name] : segments) {
    if (name == active) break;
    const std::string path = dirpath_ + "/" + name;
    auto cached = segment_last_sequence_.find(id);
    uint64_t last = 0;
    if (cached != segment_last_sequence_.end()) {
      last = cached->second;
    } else {
      LEAKDET_ASSIGN_OR_RETURN(std::string data, dir_->Read(path));
      RecordCursor cursor(data);
      while (true) {
        StatusOr<FeedRecord> record = cursor.Next();
        if (!record.ok()) break;  // clean end (non-active segments are clean)
        last = record->sequence;
      }
      segment_last_sequence_[id] = last;
    }
    if (last > covered) break;  // still live, as is everything after it
    LEAKDET_RETURN_IF_ERROR(dir_->Remove(path));
    segment_last_sequence_.erase(id);
    ++stats.segments_removed;
  }

  if (stats.segments_removed + stats.snapshots_removed > 0) {
    LEAKDET_RETURN_IF_ERROR(dir_->SyncDir(dirpath_));
  }
  compactions_->Inc();
  segments_removed_->Inc(stats.segments_removed);
  snapshots_removed_->Inc(stats.snapshots_removed);
  return stats;
}

}  // namespace leakdet::store
