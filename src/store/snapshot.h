#ifndef LEAKDET_STORE_SNAPSHOT_H_
#define LEAKDET_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/packet.h"
#include "store/file.h"
#include "util/statusor.h"

namespace leakdet::store {

/// A point-in-time image of the trainer's durable state, written whenever a
/// new signature epoch is published. It captures everything recovery needs
/// to republish the *exact* matcher that was serving — the serialized
/// signature set plus the training pools and counters — so a restart serves
/// the pre-crash epoch immediately and replays only the WAL suffix past
/// `last_sequence`.
struct SnapshotContents {
  uint64_t feed_version = 0;
  /// WAL records with sequence <= this are folded into the snapshot.
  uint64_t last_sequence = 0;
  /// SignatureServer's since-last-retrain counter.
  uint64_t new_suspicious = 0;
  /// Build parameters of the epoch (one audit line: "k=v k=v ...").
  std::string params;
  /// match::SignatureSet::Serialize() of the published set.
  std::string signatures;
  /// The server's retained training pools (restored verbatim so replayed
  /// retrains sample exactly what the no-crash run would have sampled).
  std::vector<core::HttpPacket> suspicious;
  std::vector<core::HttpPacket> normal;
};

/// Text header + digest-protected body:
///
///   leakdet-snapshot v1
///   feed_version <u64>
///   last_sequence <u64>
///   new_suspicious <u64>
///   params <free text>
///   sections <signature bytes> <suspicious bytes> <normal bytes>
///   digest <40-hex SHA-1 over the whole file minus this line>
///   ---
///   <signature set><suspicious JSONL><normal JSONL>
std::string SerializeSnapshot(const SnapshotContents& snapshot);

/// Parses and digest-verifies the SerializeSnapshot format.
StatusOr<SnapshotContents> ParseSnapshot(std::string_view text);

/// "snap-<version 20 digits>-<sequence 20 digits>.snap" — sorts by version.
std::string SnapshotFileName(uint64_t feed_version, uint64_t last_sequence);
bool ParseSnapshotFileName(std::string_view name, uint64_t* feed_version,
                           uint64_t* last_sequence);

/// Writes `snapshot` crash-atomically into `dirpath`: temp file in the same
/// directory, fsync, rename to its final name, directory fsync. A crash at
/// any point leaves the previous snapshots intact.
Status WriteSnapshotFile(Dir* dir, const std::string& dirpath,
                         const SnapshotContents& snapshot);

/// Loads the newest snapshot that parses and digest-verifies, skipping
/// damaged ones (recovery must fall back, not fail, when the latest write
/// was interrupted). NotFound if no valid snapshot exists. When `file_name`
/// is non-null it receives the chosen file's name; `skipped` (optional)
/// counts invalid candidates that were passed over.
StatusOr<SnapshotContents> LoadNewestSnapshot(Dir* dir,
                                              const std::string& dirpath,
                                              std::string* file_name = nullptr,
                                              size_t* skipped = nullptr);

/// The newest valid snapshot's raw serialized bytes (digest-verified before
/// returning, same fallback-over-damage policy as LoadNewestSnapshot).
/// Replication ships these bytes verbatim so a follower installs a
/// byte-identical copy of the leader's snapshot. NotFound if none exists.
StatusOr<std::string> ReadNewestSnapshotRaw(Dir* dir,
                                            const std::string& dirpath,
                                            std::string* file_name = nullptr);

}  // namespace leakdet::store

#endif  // LEAKDET_STORE_SNAPSHOT_H_
