#ifndef LEAKDET_STORE_WAL_H_
#define LEAKDET_STORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/packet.h"
#include "store/file.h"
#include "util/statusor.h"

namespace leakdet::store {

/// One persisted feed event: the (packet, verdict, feed-version) tuple the
/// gateway's training path observed, in arrival order. `sequence` is the
/// global position in the log (1-based, contiguous); `feed_version` is the
/// matcher epoch the verdict was produced under.
struct FeedRecord {
  uint64_t sequence = 0;
  uint64_t feed_version = 0;
  bool sensitive = false;
  uint32_t shard = 0;
  uint32_t num_matches = 0;
  core::HttpPacket packet;
};

/// When the WAL writer makes appended records durable. Records are
/// *acknowledged as durable* only once covered by a successful sync; a crash
/// may lose any suffix of unacknowledged records but never an acknowledged
/// one (the crash-recovery differential tests enforce exactly this).
enum class SyncPolicy {
  kEveryRecord,  ///< fdatasync after every append (strongest, slowest)
  kEveryN,       ///< fdatasync after every `sync_every_n` appends
  kOnRotate,     ///< fdatasync only at segment rotation / explicit Sync()
};

StatusOr<SyncPolicy> ParseSyncPolicy(std::string_view name);
std::string_view SyncPolicyName(SyncPolicy policy);

struct WalOptions {
  SyncPolicy sync_policy = SyncPolicy::kEveryN;
  /// Group-commit size for kEveryN: records are staged in memory and written
  /// with one write() + one fdatasync() per batch. 256 records of typical
  /// feed traffic is a few tens of KB per commit — the sync cost amortizes
  /// to noise while the unacknowledged window stays well under a second of
  /// ingest.
  size_t sync_every_n = 256;
  /// Rotate to a new segment once the current one reaches this size.
  size_t segment_bytes = 4 << 20;
};

/// Segment files are named "wal-<id 20 digits>.log"; ids increase in
/// creation order (they are independent of record sequences so a recovered
/// writer can always start a fresh segment).
std::string SegmentFileName(uint64_t id);
bool ParseSegmentFileName(std::string_view name, uint64_t* id);

/// Record framing, shared by the writer, replay, and the leakdet_store
/// inspect/verify tooling:
///
///   +------------+-----------+--------+------------------+
///   | crc32c u32 | length u32| type u8| payload (length) |
///   +------------+-----------+--------+------------------+
///
/// little-endian, crc masked (util/crc32c.h) and covering type+payload.
/// The feed-record payload is
///
///   sequence u64 | feed_version u64 | sensitive u8 | shard u32 |
///   num_matches u32 | packet JSON (io::SerializePacketJson)
std::string FrameRecord(const FeedRecord& record);

/// Iterates framed records over one segment's raw bytes.
class RecordCursor {
 public:
  explicit RecordCursor(std::string_view data) : data_(data) {}

  /// The next record. NotFound at a clean end of data; OutOfRange when the
  /// remaining bytes are a truncated record (torn tail); Corruption on a CRC
  /// mismatch or malformed payload.
  StatusOr<FeedRecord> Next();

  /// Offset one past the last cleanly decoded record (the repair size for a
  /// torn tail).
  size_t offset() const { return offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

struct WalReplayStats {
  uint64_t segments = 0;         ///< segments scanned
  uint64_t records = 0;          ///< valid records seen
  uint64_t applied = 0;          ///< records delivered (sequence > after)
  uint64_t last_sequence = 0;    ///< highest valid sequence (0 = empty log)
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes discarded
};

/// Replays every record with sequence > `after_sequence`, in order, into
/// `fn` (which may be null to scan only). An invalid tail in the *last*
/// segment is a torn tail: it is skipped and, when `repair` is set,
/// truncated away on disk. Invalid bytes anywhere else — or a sequence gap —
/// are Corruption: the log is damaged beyond safe replay.
StatusOr<WalReplayStats> ReplayWal(
    Dir* dir, const std::string& dirpath, uint64_t after_sequence,
    const std::function<Status(const FeedRecord&)>& fn, bool repair);

/// Appends CRC-framed records across size-rotated segment files with group
/// commit: records are staged in an in-memory batch and reach the file in
/// one write() per sync point (or when the batch hits an internal flush
/// threshold), so an every-N policy costs one write + one fdatasync per N
/// records instead of N writes. Staged records are not yet in the live log —
/// a crash loses them — but they were never acknowledged either:
/// `durable_sequence()` only ever covers records that a successful flush AND
/// fdatasync both observed. Not thread-safe: one writer, externally
/// serialized (the gateway's single training thread). `durable_sequence()`
/// alone may be read from any thread.
class WalWriter {
 public:
  /// Creates a fresh segment after any existing ones. `next_sequence` is the
  /// sequence the next appended record receives (last recovered + 1).
  static StatusOr<std::unique_ptr<WalWriter>> Open(Dir* dir,
                                                   const std::string& dirpath,
                                                   uint64_t next_sequence,
                                                   const WalOptions& options);

  /// Best-effort flush of any staged batch (write only, no fdatasync); call
  /// Sync() before destruction for durability.
  ~WalWriter();

  /// Stages `record` (its `sequence` field is assigned) and applies the
  /// sync policy. On a write fault the segment tail is truncated back to
  /// the last flushed batch boundary and the whole staged batch is retried —
  /// immediately once, then again at the next flush point — so sequences
  /// never skip. Only an unrepairable tail (truncate/reopen failure) breaks
  /// the writer, which then refuses further appends. Flush and sync failures
  /// do not fail the append: the durable watermark simply does not advance
  /// (callers gate acknowledgement on it). Returns the assigned sequence.
  StatusOr<uint64_t> Append(FeedRecord record);

  /// Replication apply: appends `record` keeping its caller-assigned
  /// sequence, which must be exactly next_sequence() — followers mirror the
  /// leader's log, so a gap or rewind is InvalidArgument and nothing is
  /// written. Same durability/repair contract as Append().
  StatusOr<uint64_t> AppendReplicated(FeedRecord record);

  /// Writes any staged batch and forces an fdatasync, advancing the durable
  /// watermark past every record appended so far.
  Status Sync();

  uint64_t next_sequence() const { return next_sequence_; }

  /// Highest sequence acknowledged as durable (0 = none). Any thread.
  uint64_t durable_sequence() const {
    return durable_sequence_.load(std::memory_order_acquire);
  }

  uint64_t segments_created() const { return segments_created_; }
  uint64_t segment_id() const { return segment_id_; }
  /// Flush faults repaired by truncate-to-boundary + retry.
  uint64_t append_repairs() const { return append_repairs_; }
  uint64_t sync_errors() const { return sync_errors_; }
  bool broken() const { return broken_; }

 private:
  WalWriter(Dir* dir, std::string dirpath, uint64_t next_sequence,
            const WalOptions& options)
      : dir_(dir),
        dirpath_(std::move(dirpath)),
        next_sequence_(next_sequence),
        options_(options) {}

  Status OpenSegment(uint64_t id);
  Status Rotate();
  /// Writes the staged batch to the segment (no fdatasync). On failure the
  /// batch stays staged for a later retry; see Append() for the repair
  /// contract.
  Status Flush();

  Dir* dir_;
  std::string dirpath_;
  uint64_t next_sequence_;
  WalOptions options_;

  std::unique_ptr<File> file_;
  std::string segment_path_;
  uint64_t segment_id_ = 0;
  size_t segment_size_ = 0;   ///< bytes of cleanly *flushed* records
  std::string pending_;       ///< staged frames not yet written
  size_t unsynced_records_ = 0;
  std::atomic<uint64_t> durable_sequence_{0};
  uint64_t segments_created_ = 0;
  uint64_t append_repairs_ = 0;
  uint64_t sync_errors_ = 0;
  bool broken_ = false;
};

}  // namespace leakdet::store

#endif  // LEAKDET_STORE_WAL_H_
