#include "store/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "crypto/sha1.h"
#include "io/trace_io.h"
#include "util/strutil.h"

namespace leakdet::store {

namespace {

constexpr std::string_view kMagic = "leakdet-snapshot v1";

std::string PoolJsonl(const std::vector<core::HttpPacket>& packets) {
  std::vector<sim::LabeledPacket> labeled(packets.size());
  for (size_t i = 0; i < packets.size(); ++i) labeled[i].packet = packets[i];
  return io::SerializeJsonl(labeled);
}

StatusOr<std::vector<core::HttpPacket>> ParsePool(std::string_view jsonl) {
  LEAKDET_ASSIGN_OR_RETURN(std::vector<sim::LabeledPacket> labeled,
                           io::ParseJsonl(jsonl));
  std::vector<core::HttpPacket> packets;
  packets.reserve(labeled.size());
  for (sim::LabeledPacket& lp : labeled) packets.push_back(std::move(lp.packet));
  return packets;
}

/// Reads one '\n'-terminated line starting at *pos (newline consumed, not
/// returned). Corruption if no newline remains.
StatusOr<std::string_view> ReadLine(std::string_view text, size_t* pos) {
  size_t nl = text.find('\n', *pos);
  if (nl == std::string_view::npos) {
    return Status::Corruption("snapshot header truncated");
  }
  std::string_view line = text.substr(*pos, nl - *pos);
  *pos = nl + 1;
  return line;
}

StatusOr<uint64_t> HeaderUint(std::string_view line, std::string_view key) {
  if (line.substr(0, key.size()) != key || line.size() <= key.size() ||
      line[key.size()] != ' ') {
    return Status::Corruption("snapshot header: expected '" +
                              std::string(key) + "'");
  }
  return ParseUint64(line.substr(key.size() + 1));
}

}  // namespace

std::string SerializeSnapshot(const SnapshotContents& snapshot) {
  const std::string sus = PoolJsonl(snapshot.suspicious);
  const std::string norm = PoolJsonl(snapshot.normal);
  std::string head = std::string(kMagic) + "\n";
  head += "feed_version " + std::to_string(snapshot.feed_version) + "\n";
  head += "last_sequence " + std::to_string(snapshot.last_sequence) + "\n";
  head += "new_suspicious " + std::to_string(snapshot.new_suspicious) + "\n";
  head += "params " + snapshot.params + "\n";
  head += "sections " + std::to_string(snapshot.signatures.size()) + " " +
          std::to_string(sus.size()) + " " + std::to_string(norm.size()) + "\n";

  std::string tail = "---\n" + snapshot.signatures + sus + norm;

  // The digest covers everything but its own line, so a flipped byte
  // anywhere — header, separator, or body — is caught.
  crypto::Sha1 sha;
  sha.Update(head);
  sha.Update(tail);
  auto digest = sha.Finish();
  std::string hex = HexEncode(std::string_view(
      reinterpret_cast<const char*>(digest.data()), digest.size()));

  return head + "digest " + hex + "\n" + tail;
}

StatusOr<SnapshotContents> ParseSnapshot(std::string_view text) {
  size_t pos = 0;
  LEAKDET_ASSIGN_OR_RETURN(std::string_view magic, ReadLine(text, &pos));
  if (magic != kMagic) return Status::Corruption("not a leakdet snapshot");

  SnapshotContents snapshot;
  LEAKDET_ASSIGN_OR_RETURN(std::string_view line, ReadLine(text, &pos));
  LEAKDET_ASSIGN_OR_RETURN(snapshot.feed_version,
                           HeaderUint(line, "feed_version"));
  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  LEAKDET_ASSIGN_OR_RETURN(snapshot.last_sequence,
                           HeaderUint(line, "last_sequence"));
  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  LEAKDET_ASSIGN_OR_RETURN(snapshot.new_suspicious,
                           HeaderUint(line, "new_suspicious"));

  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  if (line.substr(0, 7) != "params ") {
    return Status::Corruption("snapshot header: expected 'params'");
  }
  snapshot.params = std::string(line.substr(7));

  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  if (line.substr(0, 9) != "sections ") {
    return Status::Corruption("snapshot header: expected 'sections'");
  }
  std::vector<std::string_view> sizes = Split(line.substr(9), ' ');
  if (sizes.size() != 3) {
    return Status::Corruption("snapshot header: sections needs 3 sizes");
  }
  LEAKDET_ASSIGN_OR_RETURN(uint64_t sig_bytes, ParseUint64(sizes[0]));
  LEAKDET_ASSIGN_OR_RETURN(uint64_t sus_bytes, ParseUint64(sizes[1]));
  LEAKDET_ASSIGN_OR_RETURN(uint64_t norm_bytes, ParseUint64(sizes[2]));

  const size_t digest_start = pos;
  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  if (line.substr(0, 7) != "digest ") {
    return Status::Corruption("snapshot header: expected 'digest'");
  }
  const std::string expected(line.substr(7));
  const size_t digest_end = pos;

  crypto::Sha1 sha;
  sha.Update(text.substr(0, digest_start));
  sha.Update(text.substr(digest_end));
  auto digest = sha.Finish();
  std::string actual = HexEncode(std::string_view(
      reinterpret_cast<const char*>(digest.data()), digest.size()));
  if (actual != expected) {
    return Status::Corruption("snapshot digest mismatch");
  }

  LEAKDET_ASSIGN_OR_RETURN(line, ReadLine(text, &pos));
  if (line != "---") return Status::Corruption("snapshot: expected '---'");

  std::string_view body = text.substr(pos);
  if (body.size() != sig_bytes + sus_bytes + norm_bytes) {
    return Status::Corruption("snapshot body size mismatch");
  }
  snapshot.signatures = std::string(body.substr(0, sig_bytes));
  LEAKDET_ASSIGN_OR_RETURN(snapshot.suspicious,
                           ParsePool(body.substr(sig_bytes, sus_bytes)));
  LEAKDET_ASSIGN_OR_RETURN(snapshot.normal,
                           ParsePool(body.substr(sig_bytes + sus_bytes)));
  return snapshot;
}

std::string SnapshotFileName(uint64_t feed_version, uint64_t last_sequence) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%020llu-%020llu.snap",
                static_cast<unsigned long long>(feed_version),
                static_cast<unsigned long long>(last_sequence));
  return buf;
}

bool ParseSnapshotFileName(std::string_view name, uint64_t* feed_version,
                           uint64_t* last_sequence) {
  if (name.size() != 5 + 20 + 1 + 20 + 5 || name.substr(0, 5) != "snap-" ||
      name[25] != '-' || name.substr(46) != ".snap") {
    return false;
  }
  auto parse20 = [](std::string_view digits, uint64_t* out) {
    uint64_t value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return true;
  };
  return parse20(name.substr(5, 20), feed_version) &&
         parse20(name.substr(26, 20), last_sequence);
}

Status WriteSnapshotFile(Dir* dir, const std::string& dirpath,
                         const SnapshotContents& snapshot) {
  const std::string name =
      SnapshotFileName(snapshot.feed_version, snapshot.last_sequence);
  const std::string tmp = dirpath + "/." + name + ".tmp";
  const std::string final_path = dirpath + "/" + name;

  if (dir->Exists(tmp)) LEAKDET_RETURN_IF_ERROR(dir->Remove(tmp));
  LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<File> file, dir->OpenAppend(tmp));
  Status status = file->Append(SerializeSnapshot(snapshot));
  if (status.ok()) status = file->Sync();
  Status close_status = file->Close();
  if (status.ok()) status = close_status;
  if (!status.ok()) {
    dir->Remove(tmp);
    return status;
  }
  LEAKDET_RETURN_IF_ERROR(dir->Rename(tmp, final_path));
  return dir->SyncDir(dirpath);
}

StatusOr<SnapshotContents> LoadNewestSnapshot(Dir* dir,
                                              const std::string& dirpath,
                                              std::string* file_name,
                                              size_t* skipped) {
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names, dir->List(dirpath));
  std::vector<std::string> candidates;
  for (const std::string& name : names) {
    uint64_t version = 0, sequence = 0;
    if (ParseSnapshotFileName(name, &version, &sequence)) {
      candidates.push_back(name);
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());  // newest version first
  if (skipped) *skipped = 0;
  for (const std::string& name : candidates) {
    StatusOr<std::string> text = dir->Read(dirpath + "/" + name);
    if (text.ok()) {
      StatusOr<SnapshotContents> snapshot = ParseSnapshot(*text);
      if (snapshot.ok()) {
        if (file_name) *file_name = name;
        return snapshot;
      }
    }
    if (skipped) ++*skipped;
  }
  return Status::NotFound("no valid snapshot in " + dirpath);
}

StatusOr<std::string> ReadNewestSnapshotRaw(Dir* dir,
                                            const std::string& dirpath,
                                            std::string* file_name) {
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names, dir->List(dirpath));
  std::vector<std::string> candidates;
  for (const std::string& name : names) {
    uint64_t version = 0, sequence = 0;
    if (ParseSnapshotFileName(name, &version, &sequence)) {
      candidates.push_back(name);
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());  // newest version first
  for (const std::string& name : candidates) {
    StatusOr<std::string> text = dir->Read(dirpath + "/" + name);
    if (text.ok() && ParseSnapshot(*text).ok()) {
      if (file_name) *file_name = name;
      return std::move(*text);
    }
  }
  return Status::NotFound("no valid snapshot in " + dirpath);
}

}  // namespace leakdet::store
