#ifndef LEAKDET_STORE_FILE_H_
#define LEAKDET_STORE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace leakdet::store {

/// Narrow append-only file seam between the durable store and the operating
/// system, mirroring the net::Stream seam from the serving path: production
/// code runs on the POSIX implementation behind Dir::Real(), the chaos
/// harness injects testing::ScriptedDir, whose files replay seeded fault
/// schedules (short appends, fsync failures, torn tails, bit flips) against
/// the same contract.
///
/// Contract notes, shared by every implementation:
///  - Append either appends the whole buffer or returns an error; after an
///    error the on-disk tail is unspecified (a prefix of the buffer may have
///    landed) and the caller must repair via Dir::Truncate before reuse;
///  - data is guaranteed durable only once Sync() has returned OK; a crash
///    may retain any prefix (possibly corrupted) of unsynced bytes;
///  - creating or renaming a file makes its *name* durable only after
///    SyncDir() on the containing directory.
class File {
 public:
  virtual ~File() = default;

  /// Appends the whole buffer (or fails; see contract above).
  virtual Status Append(std::string_view data) = 0;

  /// Makes every appended byte durable (fdatasync).
  virtual Status Sync() = 0;

  /// Closes the handle. Idempotent; implied by destruction (without Sync).
  virtual Status Close() = 0;
};

/// Directory / filesystem half of the seam. All paths are full paths (the
/// store passes "<data_dir>/<name>"). Stateless for the real filesystem, so
/// production code shares the Dir::Real() singleton.
class Dir {
 public:
  virtual ~Dir() = default;

  /// The local POSIX filesystem (shared singleton, never null).
  static Dir* Real();

  /// Opens `path` for appending, creating it if missing.
  virtual StatusOr<std::unique_ptr<File>> OpenAppend(
      const std::string& path) = 0;

  /// Reads the whole file.
  virtual StatusOr<std::string> Read(const std::string& path) = 0;

  /// Entry names (not paths) in `dirpath`, sorted; "." and ".." excluded.
  virtual StatusOr<std::vector<std::string>> List(
      const std::string& dirpath) = 0;

  /// Creates `dirpath` (one level); OK if it already exists.
  virtual Status CreateDir(const std::string& dirpath) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (torn-tail repair).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Makes directory-entry changes (creates, renames, removes) in `dirpath`
  /// durable.
  virtual Status SyncDir(const std::string& dirpath) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

}  // namespace leakdet::store

#endif  // LEAKDET_STORE_FILE_H_
