#ifndef LEAKDET_STORE_STORE_MANAGER_H_
#define LEAKDET_STORE_STORE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/signature_server.h"
#include "obs/metrics.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace leakdet::store {

struct StoreOptions {
  WalOptions wal;
  /// Valid snapshots retained by Compact() (must be >= 1; the newest is
  /// never removed).
  size_t keep_snapshots = 2;
  /// Metrics destination for store.* counters/histograms and the WAL
  /// watermark gauges. nullptr = obs::Registry::Default(); serving binaries
  /// pass the same registry the gateway and admin server share.
  obs::Registry* registry = nullptr;
};

/// One data directory of durable trainer state: "wal-*.log" segments plus
/// "snap-*.snap" epoch snapshots. The gateway's training path appends every
/// (packet, verdict, feed-version) tuple before ingesting it, snapshots
/// after every published epoch, and on restart recovers in the
/// serve-before-replay order:
///
///   1. load the newest valid snapshot and Restore() it into the
///      SignatureServer — the feed observer republishes the pre-crash
///      serving epoch immediately;
///   2. replay the WAL suffix (sequence > snapshot.last_sequence) through
///      Ingest(), re-running any retrains the crash interrupted;
///   3. segments fully folded into a snapshot become eligible for Compact().
///
/// Same threading contract as SignatureServer: one training thread, except
/// durable_sequence() which any thread may poll.
class StoreManager {
 public:
  /// Opens (creating if needed) the data directory, repairs any torn WAL
  /// tail, and positions the writer after the last valid record. Does not
  /// touch a SignatureServer — call Recover() next.
  static StatusOr<std::unique_ptr<StoreManager>> Open(
      Dir* dir, const std::string& dirpath, const StoreOptions& options);

  struct RecoveryStats {
    bool snapshot_loaded = false;
    uint64_t snapshot_version = 0;
    uint64_t snapshot_sequence = 0;
    size_t snapshots_skipped = 0;  ///< damaged snapshots passed over
    WalReplayStats replay;
  };

  /// Serve-before-replay recovery into `server` (see class comment). The
  /// server's feed observer should already be installed so the restored
  /// epoch and any replayed retrains publish. Corruption if the log has a
  /// gap between the snapshot and its first surviving record.
  StatusOr<RecoveryStats> Recover(core::SignatureServer* server);

  /// Appends one feed event (sequence assigned; verdict fields already set
  /// by the caller). Returns the assigned sequence. Durability follows the
  /// WAL sync policy — gate acknowledgement on durable_sequence().
  StatusOr<uint64_t> Append(FeedRecord record);

  /// Replication apply: appends a record shipped from a leader's log,
  /// keeping its sequence. The record must continue this store's log exactly
  /// (sequence == last_sequence() + 1); anything else is rejected without a
  /// write, so a follower's log stays a prefix-mirror of its leader's.
  StatusOr<uint64_t> AppendReplicated(FeedRecord record);

  /// Installs a snapshot shipped from a leader (already parsed — i.e.
  /// digest-verified) as this store's newest snapshot. The local log must
  /// already cover it (`snapshot.last_sequence <= last_sequence()`):
  /// recovery replays the WAL suffix past the snapshot, so installing one
  /// ahead of the local log would open an unfillable gap. Crash-atomic like
  /// WriteSnapshot; syncs the WAL first for the same reason.
  Status InstallSnapshot(const SnapshotContents& snapshot);

  /// Forces the WAL durable (e.g. on shutdown).
  Status Sync();

  /// Highest sequence acknowledged as durable. Any thread.
  uint64_t durable_sequence() const { return writer_->durable_sequence(); }

  /// Sequence of the last record appended (== last ingested in the
  /// training flow, which appends before it ingests).
  uint64_t last_sequence() const { return writer_->next_sequence() - 1; }

  /// Snapshots the server's current state (pools, counters, published
  /// signature set and its build parameters) at last_sequence(). Syncs the
  /// WAL first so snapshot and log agree on what is durable. Called by the
  /// trainer after every publish.
  Status WriteSnapshot(const core::SignatureServer& server);

  struct CompactStats {
    uint64_t segments_removed = 0;
    uint64_t snapshots_removed = 0;
  };

  /// Removes WAL segments whose records are all folded into the newest
  /// valid snapshot (never the active segment) and all but the
  /// `keep_snapshots` newest valid snapshots. Safe to call any time on the
  /// training thread; a no-op without a snapshot.
  ///
  /// Runs on the publish path (trainer calls it after every snapshot), so it
  /// avoids re-reading the directory's contents: the snapshot just written
  /// by WriteSnapshot(), snapshots already digest-verified once, and the
  /// per-segment sequence ranges of closed segments are all remembered
  /// in-memory, leaving only the directory listing and the unlinks.
  StatusOr<CompactStats> Compact();

  const WalWriter& writer() const { return *writer_; }

 private:
  StoreManager(Dir* dir, std::string dirpath, StoreOptions options);

  /// Mirrors the writer's training-thread-only counters (next_sequence,
  /// segment ids, repair counts) into atomic gauges, so /statusz renderers
  /// on the admin thread never touch WalWriter state that isn't atomic.
  void RefreshWalGauges();

  Dir* dir_;
  std::string dirpath_;
  StoreOptions options_;
  std::unique_ptr<WalWriter> writer_;
  WalReplayStats open_scan_;  ///< what Open() found on disk

  // Publish-path caches (training thread only, like everything above).
  std::string newest_snapshot_name_;  ///< newest known-valid snapshot
  uint64_t newest_snapshot_covered_ = 0;
  std::set<std::string> valid_snapshots_;  ///< digest-verified at least once
  /// id -> last record sequence for *closed* segments (immutable once
  /// rotated away from); filled lazily the first time Compact reads one.
  std::map<uint64_t, uint64_t> segment_last_sequence_;

  // store.* observability (histograms/counters updated on the training
  // thread; gauges are the atomic mirror any thread may read).
  obs::Registry* registry_ = nullptr;
  obs::Histogram* append_ns_ = nullptr;
  obs::Histogram* sync_ns_ = nullptr;
  obs::Histogram* snapshot_write_ns_ = nullptr;
  obs::Counter* appends_ = nullptr;
  obs::Counter* append_errors_ = nullptr;
  obs::Counter* syncs_ = nullptr;
  obs::Counter* sync_errors_ = nullptr;
  obs::Counter* snapshots_written_ = nullptr;
  obs::Counter* snapshot_errors_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* segments_removed_ = nullptr;
  obs::Counter* snapshots_removed_ = nullptr;
  obs::Gauge* last_sequence_gauge_ = nullptr;
  obs::Gauge* durable_sequence_gauge_ = nullptr;
  obs::Gauge* segment_id_gauge_ = nullptr;
  obs::Gauge* segments_created_gauge_ = nullptr;
  obs::Gauge* append_repairs_gauge_ = nullptr;
  obs::Gauge* snapshot_version_gauge_ = nullptr;
};

/// One audit line of the build parameters behind an epoch ("k=v k=v ...");
/// stored in every snapshot so an operator can see exactly how the
/// recovered matcher was built.
std::string DescribeBuildParams(const core::SignatureServer::Options& options);

}  // namespace leakdet::store

#endif  // LEAKDET_STORE_STORE_MANAGER_H_
