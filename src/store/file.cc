#include "store/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace leakdet::store {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("append on closed file");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("sync on closed file");
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixDir final : public Dir {
 public:
  StatusOr<std::unique_ptr<File>> OpenAppend(const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  StatusOr<std::string> Read(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = Errno("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::vector<std::string>> List(const std::string& dirpath) override {
    DIR* dir = ::opendir(dirpath.c_str());
    if (dir == nullptr) return Errno("opendir", dirpath);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDir(const std::string& dirpath) override {
    if (::mkdir(dirpath.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", dirpath);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dirpath) override {
    int fd = ::open(dirpath.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir", dirpath);
    Status status;
    if (::fsync(fd) != 0) status = Errno("fsync dir", dirpath);
    ::close(fd);
    return status;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

Dir* Dir::Real() {
  static PosixDir dir;
  return &dir;
}

}  // namespace leakdet::store
