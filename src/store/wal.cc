#include "store/wal.h"

#include <algorithm>
#include <cstdio>

#include "io/trace_io.h"
#include "util/crc32c.h"

namespace leakdet::store {

namespace {

constexpr uint8_t kFeedRecordType = 1;
constexpr size_t kFrameHeaderBytes = 9;   // crc u32 + length u32 + type u8
constexpr size_t kPayloadHeaderBytes = 25;  // seq + version + flags
constexpr size_t kMaxRecordBytes = 64u << 20;
// Staged-batch write threshold: a lazy sync policy (on-rotate, huge N) still
// writes in bounded chunks instead of holding a whole segment in memory.
constexpr size_t kFlushBytes = 256u << 10;

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32(std::string_view data, size_t pos) {
  return static_cast<uint32_t>(static_cast<uint8_t>(data[pos])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 3])) << 24);
}

uint64_t GetU64(std::string_view data, size_t pos) {
  return static_cast<uint64_t>(GetU32(data, pos)) |
         (static_cast<uint64_t>(GetU32(data, pos + 4)) << 32);
}

StatusOr<FeedRecord> DecodePayload(std::string_view payload) {
  if (payload.size() < kPayloadHeaderBytes) {
    return Status::Corruption("WAL record payload too short");
  }
  FeedRecord record;
  record.sequence = GetU64(payload, 0);
  record.feed_version = GetU64(payload, 8);
  record.sensitive = payload[16] != 0;
  record.shard = GetU32(payload, 17);
  record.num_matches = GetU32(payload, 21);
  StatusOr<core::HttpPacket> packet =
      io::ParsePacketJson(payload.substr(kPayloadHeaderBytes));
  if (!packet.ok()) {
    return Status::Corruption("WAL record packet: " +
                              packet.status().message());
  }
  record.packet = std::move(*packet);
  return record;
}

}  // namespace

StatusOr<SyncPolicy> ParseSyncPolicy(std::string_view name) {
  if (name == "every-record") return SyncPolicy::kEveryRecord;
  if (name == "every-n") return SyncPolicy::kEveryN;
  if (name == "on-rotate") return SyncPolicy::kOnRotate;
  return Status::InvalidArgument("unknown sync policy: " + std::string(name));
}

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kEveryRecord: return "every-record";
    case SyncPolicy::kEveryN: return "every-n";
    case SyncPolicy::kOnRotate: return "on-rotate";
  }
  return "unknown";
}

std::string SegmentFileName(uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

bool ParseSegmentFileName(std::string_view name, uint64_t* id) {
  if (name.size() != 4 + 20 + 4 || name.substr(0, 4) != "wal-" ||
      name.substr(24) != ".log") {
    return false;
  }
  uint64_t value = 0;
  for (char c : name.substr(4, 20)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

namespace {

/// Encodes one frame directly onto `*out` (no intermediate payload/frame
/// strings — this runs per record on the gateway's hot training path). The
/// 9-byte header is reserved up front and backpatched once the payload size
/// and CRC are known.
void AppendFrame(const FeedRecord& record, std::string* out) {
  const size_t head = out->size();
  out->append(8, '\0');  // crc u32 + length u32; type starts the covered part
  out->push_back(static_cast<char>(kFeedRecordType));
  PutU64(record.sequence, out);
  PutU64(record.feed_version, out);
  out->push_back(record.sensitive ? 1 : 0);
  PutU32(record.shard, out);
  PutU32(record.num_matches, out);
  io::AppendPacketJson(record.packet, out);

  std::string_view covered = std::string_view(*out).substr(head + 8);
  const uint32_t masked = Crc32cMask(Crc32c(covered));
  const uint32_t length = static_cast<uint32_t>(covered.size() - 1);
  for (int i = 0; i < 4; ++i) {
    (*out)[head + i] = static_cast<char>((masked >> (8 * i)) & 0xFF);
    (*out)[head + 4 + i] = static_cast<char>((length >> (8 * i)) & 0xFF);
  }
}

}  // namespace

std::string FrameRecord(const FeedRecord& record) {
  std::string frame;
  AppendFrame(record, &frame);
  return frame;
}

StatusOr<FeedRecord> RecordCursor::Next() {
  if (offset_ == data_.size()) return Status::NotFound("end of segment");
  if (data_.size() - offset_ < kFrameHeaderBytes) {
    return Status::OutOfRange("truncated record header");
  }
  uint32_t expected_crc = Crc32cUnmask(GetU32(data_, offset_));
  uint32_t length = GetU32(data_, offset_ + 4);
  if (length > kMaxRecordBytes) {
    return Status::Corruption("implausible WAL record length");
  }
  if (data_.size() - offset_ - kFrameHeaderBytes < length) {
    return Status::OutOfRange("truncated record payload");
  }
  std::string_view covered = data_.substr(offset_ + 8, 1 + length);
  if (Crc32c(covered) != expected_crc) {
    return Status::Corruption("WAL record CRC mismatch");
  }
  if (static_cast<uint8_t>(covered[0]) != kFeedRecordType) {
    return Status::Corruption("unknown WAL record type");
  }
  StatusOr<FeedRecord> record = DecodePayload(covered.substr(1));
  if (!record.ok()) return record.status();
  offset_ += kFrameHeaderBytes + length;
  return record;
}

StatusOr<WalReplayStats> ReplayWal(
    Dir* dir, const std::string& dirpath, uint64_t after_sequence,
    const std::function<Status(const FeedRecord&)>& fn, bool repair) {
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names, dir->List(dirpath));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t id = 0;
    if (ParseSegmentFileName(name, &id)) segments.emplace_back(id, name);
  }
  std::sort(segments.begin(), segments.end());

  WalReplayStats stats;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = dirpath + "/" + segments[i].second;
    LEAKDET_ASSIGN_OR_RETURN(std::string data, dir->Read(path));
    RecordCursor cursor(data);
    ++stats.segments;
    while (true) {
      StatusOr<FeedRecord> record = cursor.Next();
      if (!record.ok()) {
        if (record.status().code() == StatusCode::kNotFound) break;
        // Invalid bytes: a torn tail if (and only if) this is the newest
        // segment — anything earlier is mid-log damage.
        if (i + 1 != segments.size()) {
          return Status::Corruption("WAL segment " + segments[i].second +
                                    " damaged mid-log: " +
                                    record.status().message());
        }
        uint64_t torn = data.size() - cursor.offset();
        stats.truncated_bytes += torn;
        if (repair && torn > 0) {
          LEAKDET_RETURN_IF_ERROR(dir->Truncate(path, cursor.offset()));
        }
        break;
      }
      if (stats.last_sequence != 0 &&
          record->sequence != stats.last_sequence + 1) {
        return Status::Corruption("WAL sequence gap in " + segments[i].second);
      }
      stats.last_sequence = record->sequence;
      ++stats.records;
      if (record->sequence > after_sequence) {
        ++stats.applied;
        if (fn) LEAKDET_RETURN_IF_ERROR(fn(*record));
      }
    }
  }
  return stats;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(Dir* dir,
                                                     const std::string& dirpath,
                                                     uint64_t next_sequence,
                                                     const WalOptions& options) {
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names, dir->List(dirpath));
  uint64_t max_id = 0;
  for (const std::string& name : names) {
    uint64_t id = 0;
    if (ParseSegmentFileName(name, &id)) max_id = std::max(max_id, id);
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, dirpath, next_sequence, options));
  if (writer->options_.sync_every_n == 0) writer->options_.sync_every_n = 1;
  LEAKDET_RETURN_IF_ERROR(writer->OpenSegment(max_id + 1));
  return writer;
}

Status WalWriter::OpenSegment(uint64_t id) {
  const std::string path = dirpath_ + "/" + SegmentFileName(id);
  LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<File> file, dir_->OpenAppend(path));
  // Make the segment's name durable before any record is acknowledged out
  // of it — fdatasync alone does not persist a fresh directory entry.
  LEAKDET_RETURN_IF_ERROR(dir_->SyncDir(dirpath_));
  file_ = std::move(file);
  segment_path_ = path;
  segment_id_ = id;
  segment_size_ = 0;
  ++segments_created_;
  return Status::OK();
}

WalWriter::~WalWriter() {
  // Clean-shutdown courtesy: whatever is staged reaches the file (no
  // fdatasync — durability still requires an explicit Sync() first).
  if (!broken_ && file_ != nullptr) Flush();
}

Status WalWriter::Rotate() {
  // A segment may only be followed by another segment once its tail is
  // clean and durable; a failed sync therefore aborts the rotation (the
  // writer keeps appending to the oversized segment and retries later).
  LEAKDET_RETURN_IF_ERROR(Sync());
  file_->Close();
  Status status = OpenSegment(segment_id_ + 1);
  if (!status.ok()) broken_ = true;
  return status;
}

Status WalWriter::Flush() {
  if (pending_.empty()) return Status::OK();
  Status status = file_->Append(pending_);
  if (!status.ok()) {
    // The tail now holds an unknown prefix of the batch. Repair: truncate
    // back to the last flushed record boundary and retry the whole batch
    // once on the clean tail. Either way the batch stays staged, so a later
    // flush point retries it again — a record whose write faulted is delayed,
    // never skipped.
    ++append_repairs_;
    file_->Close();
    Status repair = dir_->Truncate(segment_path_, segment_size_);
    if (!repair.ok()) {
      broken_ = true;
      return status;
    }
    StatusOr<std::unique_ptr<File>> reopened = dir_->OpenAppend(segment_path_);
    if (!reopened.ok()) {
      broken_ = true;
      return status;
    }
    file_ = std::move(*reopened);
    status = file_->Append(pending_);
    if (!status.ok()) {
      file_->Close();
      if (!dir_->Truncate(segment_path_, segment_size_).ok() ||
          !(reopened = dir_->OpenAppend(segment_path_)).ok()) {
        broken_ = true;
      } else {
        file_ = std::move(*reopened);
      }
      return status;
    }
  }
  segment_size_ += pending_.size();
  pending_.clear();
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::AppendReplicated(FeedRecord record) {
  // A replica's log must stay a byte-for-byte prefix-mirror of its leader's
  // sequence space: accept exactly the next expected record, nothing else.
  if (record.sequence != next_sequence_) {
    return Status::InvalidArgument(
        "replicated record sequence " + std::to_string(record.sequence) +
        " does not continue the log (expected " +
        std::to_string(next_sequence_) + ")");
  }
  return Append(std::move(record));
}

StatusOr<uint64_t> WalWriter::Append(FeedRecord record) {
  if (broken_) {
    return Status::FailedPrecondition("WAL writer is broken (unrepaired tail)");
  }
  if (segment_size_ + pending_.size() >= options_.segment_bytes) {
    Rotate();  // on failure: stay on the oversized segment (see Rotate)
    if (broken_) {
      return Status::FailedPrecondition("WAL rotation failed; writer broken");
    }
  }
  record.sequence = next_sequence_;
  AppendFrame(record, &pending_);
  ++next_sequence_;
  ++unsynced_records_;

  // Group commit: the staged batch reaches the file in one write() at the
  // policy's sync points (plus a size backstop), not one write per record.
  // Flush and sync failures do not fail the append — the staged records are
  // retried at the next flush point and the durable watermark simply does
  // not advance (callers gate acknowledgement on it).
  if (options_.sync_policy == SyncPolicy::kEveryRecord ||
      (options_.sync_policy == SyncPolicy::kEveryN &&
       unsynced_records_ >= options_.sync_every_n)) {
    Sync();
  } else if (pending_.size() >= kFlushBytes) {
    Flush();
  }
  if (broken_) {
    return Status::FailedPrecondition("WAL writer is broken (unrepaired tail)");
  }
  return record.sequence;
}

Status WalWriter::Sync() {
  if (broken_) {
    return Status::FailedPrecondition("WAL writer is broken (unrepaired tail)");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL writer has no open segment");
  }
  if (pending_.empty() && unsynced_records_ == 0 && next_sequence_ > 1 &&
      durable_sequence_.load(std::memory_order_relaxed) == next_sequence_ - 1) {
    return Status::OK();
  }
  Status status = Flush();
  if (!status.ok()) {
    ++sync_errors_;
    return status;
  }
  status = file_->Sync();
  if (!status.ok()) {
    ++sync_errors_;
    return status;
  }
  uint64_t durable = next_sequence_ - 1;
  if (durable > durable_sequence_.load(std::memory_order_relaxed)) {
    durable_sequence_.store(durable, std::memory_order_release);
  }
  unsynced_records_ = 0;
  return Status::OK();
}

}  // namespace leakdet::store
