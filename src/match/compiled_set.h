#ifndef LEAKDET_MATCH_COMPILED_SET_H_
#define LEAKDET_MATCH_COMPILED_SET_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "match/signature.h"
#include "prefilter/prefilter.h"

namespace leakdet::match {

/// Per-thread reusable buffers for CompiledSignatureSet matching. Owning one
/// per worker removes every per-packet heap allocation from the hot path.
struct MatchScratch {
  std::vector<uint8_t> seen;  ///< token-present bitmap (sized to the vocab)
  std::vector<size_t> hits;   ///< matching signature indices of the last call
  prefilter::ScanScratch prefilter;  ///< candidate bitmap of the last scan
};

/// What the prefilter did for one MatchIntoPrefiltered call (feeds the
/// gateway.prefilter_* counters).
enum class PrefilterOutcome : uint8_t {
  kDisabled,       ///< mode off / empty set: the plain DFA path ran
  kSkipped,        ///< empty candidate bitmap: the DFA never ran
  kCandidateHit,   ///< candidates fell through and at least one matched
  kCandidateMiss,  ///< candidates fell through but none matched (false cand.)
};

/// An immutable, execution-optimized compilation of a SignatureSet, tagged
/// with the feed version it was built from. This is the unit the detection
/// gateway hot-swaps RCU-style: readers grab a shared_ptr<const
/// CompiledSignatureSet> from an atomic slot, finish matching on that epoch,
/// and the old epoch is reclaimed when the last in-flight match drops it.
///
/// "Compiled" is literal: the node/byte-map Aho–Corasick automaton of the
/// source set is flattened into a dense DFA transition table
/// (`num_states x 256` int32) with failure links resolved and per-state
/// output closures precomputed in CSR form. Scanning a packet is then one
/// table load per byte — no map lookups, no failure-chain walking — which is
/// what makes inline detection at 100k+ packets/s per core feasible.
///
/// Thread safety: all methods are const and touch only immutable state plus
/// the caller-owned scratch, so one instance may be shared by any number of
/// threads without synchronization.
class CompiledSignatureSet {
 public:
  /// Compiles `set` (typically a copy of SignatureServer::signatures()).
  /// `version` is the feed version the set corresponds to.
  explicit CompiledSignatureSet(SignatureSet set, uint64_t version = 0);

  /// Fills `scratch->hits` with the indices of signatures whose tokens all
  /// occur in `content` and whose host scope (if any) equals `host_domain`
  /// (same contract as SignatureSet::Match). Returns the number of hits.
  size_t MatchInto(std::string_view content, std::string_view host_domain,
                   MatchScratch* scratch) const;

  /// True iff MatchInto(...) would report at least one hit.
  bool Matches(std::string_view content, std::string_view host_domain,
               MatchScratch* scratch) const {
    return MatchInto(content, host_domain, scratch) > 0;
  }

  /// MatchInto through the rare-token prefilter compiled with this epoch:
  /// scans `content` with kernel `mode` first and (a) returns 0 without
  /// touching the DFA when no signature is a candidate — the common case on
  /// normal traffic — or (b) runs the DFA but checks only candidate
  /// signatures. Hits are bit-identical to MatchInto in content, order, and
  /// count (the prefilter never drops a signature the DFA would match; see
  /// tests/fuzz_prefilter_test.cc for the differential proof). Pass
  /// prefilter::Mode::kOff to bypass the prefilter (identical to MatchInto,
  /// outcome kDisabled). `outcome`, if non-null, reports which path ran.
  size_t MatchIntoPrefiltered(std::string_view content,
                              std::string_view host_domain,
                              MatchScratch* scratch, prefilter::Mode mode,
                              PrefilterOutcome* outcome = nullptr) const;

  /// The prefilter compiled alongside the DFA (empty for an empty set).
  const prefilter::Prefilter& prefilter() const { return prefilter_; }

  uint64_t version() const { return version_; }
  const SignatureSet& set() const { return set_; }
  size_t num_signatures() const { return set_.size(); }
  size_t num_tokens() const { return num_tokens_; }
  size_t num_states() const { return num_states_; }
  /// Dense-table footprint in bytes (capacity planning / metrics).
  size_t table_bytes() const {
    return next_.size() * sizeof(int32_t) +
           out_patterns_.size() * sizeof(uint32_t) +
           out_begin_.size() * sizeof(uint32_t);
  }

 private:
  SignatureSet set_;
  uint64_t version_ = 0;
  size_t num_tokens_ = 0;
  size_t num_states_ = 0;
  std::vector<int32_t> next_;         ///< dense delta: next_[state * 256 + byte]
  std::vector<uint32_t> out_begin_;   ///< CSR offsets into out_patterns_
  std::vector<uint32_t> out_patterns_;  ///< output closure per state
  /// Rare-token prefilter compiled with the epoch, so every consumer of a
  /// CompiledSignatureSet — hot-swap, cluster replication, per-tenant
  /// federation namespaces — carries it for free.
  prefilter::Prefilter prefilter_;

  /// Shared DFA scan: marks token presence in scratch->seen (the loop body
  /// of MatchInto, reused by the candidate-restricted path).
  void ScanTokens(std::string_view content, MatchScratch* scratch) const;
  /// Evaluates signature `s` against scratch->seen + host scope.
  bool SignatureHolds(size_t s, std::string_view host_domain,
                      const MatchScratch& scratch) const;
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_COMPILED_SET_H_
