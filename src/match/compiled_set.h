#ifndef LEAKDET_MATCH_COMPILED_SET_H_
#define LEAKDET_MATCH_COMPILED_SET_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "match/signature.h"

namespace leakdet::match {

/// Per-thread reusable buffers for CompiledSignatureSet matching. Owning one
/// per worker removes every per-packet heap allocation from the hot path.
struct MatchScratch {
  std::vector<uint8_t> seen;  ///< token-present bitmap (sized to the vocab)
  std::vector<size_t> hits;   ///< matching signature indices of the last call
};

/// An immutable, execution-optimized compilation of a SignatureSet, tagged
/// with the feed version it was built from. This is the unit the detection
/// gateway hot-swaps RCU-style: readers grab a shared_ptr<const
/// CompiledSignatureSet> from an atomic slot, finish matching on that epoch,
/// and the old epoch is reclaimed when the last in-flight match drops it.
///
/// "Compiled" is literal: the node/byte-map Aho–Corasick automaton of the
/// source set is flattened into a dense DFA transition table
/// (`num_states x 256` int32) with failure links resolved and per-state
/// output closures precomputed in CSR form. Scanning a packet is then one
/// table load per byte — no map lookups, no failure-chain walking — which is
/// what makes inline detection at 100k+ packets/s per core feasible.
///
/// Thread safety: all methods are const and touch only immutable state plus
/// the caller-owned scratch, so one instance may be shared by any number of
/// threads without synchronization.
class CompiledSignatureSet {
 public:
  /// Compiles `set` (typically a copy of SignatureServer::signatures()).
  /// `version` is the feed version the set corresponds to.
  explicit CompiledSignatureSet(SignatureSet set, uint64_t version = 0);

  /// Fills `scratch->hits` with the indices of signatures whose tokens all
  /// occur in `content` and whose host scope (if any) equals `host_domain`
  /// (same contract as SignatureSet::Match). Returns the number of hits.
  size_t MatchInto(std::string_view content, std::string_view host_domain,
                   MatchScratch* scratch) const;

  /// True iff MatchInto(...) would report at least one hit.
  bool Matches(std::string_view content, std::string_view host_domain,
               MatchScratch* scratch) const {
    return MatchInto(content, host_domain, scratch) > 0;
  }

  uint64_t version() const { return version_; }
  const SignatureSet& set() const { return set_; }
  size_t num_signatures() const { return set_.size(); }
  size_t num_tokens() const { return num_tokens_; }
  size_t num_states() const { return num_states_; }
  /// Dense-table footprint in bytes (capacity planning / metrics).
  size_t table_bytes() const {
    return next_.size() * sizeof(int32_t) +
           out_patterns_.size() * sizeof(uint32_t) +
           out_begin_.size() * sizeof(uint32_t);
  }

 private:
  SignatureSet set_;
  uint64_t version_ = 0;
  size_t num_tokens_ = 0;
  size_t num_states_ = 0;
  std::vector<int32_t> next_;         ///< dense delta: next_[state * 256 + byte]
  std::vector<uint32_t> out_begin_;   ///< CSR offsets into out_patterns_
  std::vector<uint32_t> out_patterns_;  ///< output closure per state
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_COMPILED_SET_H_
