#ifndef LEAKDET_MATCH_SIGNATURE_H_
#define LEAKDET_MATCH_SIGNATURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "match/aho_corasick.h"
#include "util/statusor.h"

namespace leakdet::match {

/// A conjunction signature (§IV-E, after Polygraph): a packet matches when
/// *every* token occurs in its content. `host_scope` optionally restricts the
/// signature to destinations whose registrable domain equals it — the
/// destination half of the paper's clustering makes signatures
/// advertisement-module specific, and the scope preserves that at match time.
struct ConjunctionSignature {
  std::string id;                   ///< stable identifier ("sig-0003")
  std::vector<std::string> tokens;  ///< invariant tokens; all must occur
  std::string host_scope;           ///< "" = applies to every destination
  uint32_t cluster_size = 0;        ///< #packets in the generating cluster

  friend bool operator==(const ConjunctionSignature& a,
                         const ConjunctionSignature& b) {
    return a.id == b.id && a.tokens == b.tokens &&
           a.host_scope == b.host_scope && a.cluster_size == b.cluster_size;
  }
};

/// A deployed set of conjunction signatures with a shared Aho–Corasick
/// automaton over the token vocabulary: matching a packet against all
/// signatures is one scan of the packet.
class SignatureSet {
 public:
  SignatureSet() = default;
  explicit SignatureSet(std::vector<ConjunctionSignature> signatures);

  /// Copying rebuilds the matcher index (the automaton is not shared).
  SignatureSet(const SignatureSet& other);
  SignatureSet& operator=(const SignatureSet& other);
  SignatureSet(SignatureSet&&) = default;
  SignatureSet& operator=(SignatureSet&&) = default;

  /// Indices of signatures whose tokens all occur in `content` and whose
  /// host scope (if any) equals `host_domain` (pass the packet destination's
  /// registrable domain; pass "" to skip host scoping).
  std::vector<size_t> Match(std::string_view content,
                            std::string_view host_domain = {}) const;

  /// True iff Match(...) would be non-empty (early-outs).
  bool Matches(std::string_view content,
               std::string_view host_domain = {}) const;

  const std::vector<ConjunctionSignature>& signatures() const {
    return signatures_;
  }
  size_t size() const { return signatures_.size(); }
  bool empty() const { return signatures_.empty(); }

  /// Matcher internals, exposed so alternative execution engines (notably
  /// gateway::CompiledSignatureSet's dense-DFA compilation) can reuse the
  /// vocabulary interning and shared automaton instead of rebuilding them.
  const std::vector<std::string>& vocab() const { return vocab_; }
  const std::vector<std::vector<uint32_t>>& sig_token_ids() const {
    return sig_tokens_;
  }
  /// Null only for a default-constructed empty set.
  const AhoCorasick* automaton() const { return automaton_.get(); }

  /// Serializes to a line-oriented text format (tokens hex-encoded so
  /// arbitrary bytes survive). The "signature feed" the on-device component
  /// fetches from the server (§IV-A, Fig. 3).
  std::string Serialize() const;

  /// Parses the Serialize() format.
  static StatusOr<SignatureSet> Deserialize(std::string_view text);

 private:
  void BuildIndex();

  std::vector<ConjunctionSignature> signatures_;
  std::vector<std::string> vocab_;              // distinct tokens
  std::vector<std::vector<uint32_t>> sig_tokens_;  // per-sig vocab ids
  std::unique_ptr<AhoCorasick> automaton_;
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_SIGNATURE_H_
