#include "match/compiled_set.h"

namespace leakdet::match {

CompiledSignatureSet::CompiledSignatureSet(SignatureSet set, uint64_t version)
    : set_(std::move(set)), version_(version) {
  num_tokens_ = set_.vocab().size();
  {
    // Compile the prefilter from the same token lists the DFA matches, so
    // the two engines agree on exactly which byte strings matter.
    std::vector<std::vector<std::string>> sig_tokens;
    sig_tokens.reserve(set_.signatures().size());
    for (const ConjunctionSignature& sig : set_.signatures()) {
      sig_tokens.push_back(sig.tokens);
    }
    prefilter_ = prefilter::Prefilter::Build(sig_tokens);
  }
  const AhoCorasick* automaton = set_.automaton();
  if (automaton == nullptr || num_tokens_ == 0) return;

  num_states_ = automaton->num_nodes();
  next_.resize(num_states_ * 256);
  out_begin_.reserve(num_states_ + 1);
  out_begin_.push_back(0);
  for (size_t s = 0; s < num_states_; ++s) {
    int32_t state = static_cast<int32_t>(s);
    for (int c = 0; c < 256; ++c) {
      next_[s * 256 + static_cast<size_t>(c)] =
          automaton->Step(state, static_cast<uint8_t>(c));
    }
    for (uint32_t id : automaton->OutputClosure(state)) {
      out_patterns_.push_back(id);
    }
    out_begin_.push_back(static_cast<uint32_t>(out_patterns_.size()));
  }
}

void CompiledSignatureSet::ScanTokens(std::string_view content,
                                      MatchScratch* scratch) const {
  scratch->seen.assign(num_tokens_, 0);
  uint8_t* seen = scratch->seen.data();
  const int32_t* next = next_.data();
  size_t marked = 0;
  int32_t state = 0;
  for (char ch : content) {
    state = next[static_cast<size_t>(state) * 256 + static_cast<uint8_t>(ch)];
    uint32_t begin = out_begin_[static_cast<size_t>(state)];
    uint32_t end = out_begin_[static_cast<size_t>(state) + 1];
    for (uint32_t i = begin; i < end; ++i) {
      uint8_t& bit = seen[out_patterns_[i]];
      if (!bit) {
        bit = 1;
        ++marked;
      }
    }
    if (marked == num_tokens_) break;  // every token already found
  }
}

bool CompiledSignatureSet::SignatureHolds(size_t s,
                                          std::string_view host_domain,
                                          const MatchScratch& scratch) const {
  const ConjunctionSignature& sig = set_.signatures()[s];
  if (!sig.host_scope.empty() && !host_domain.empty() &&
      sig.host_scope != host_domain) {
    return false;
  }
  if (sig.tokens.empty()) return false;  // never match an empty conjunction
  const uint8_t* seen = scratch.seen.data();
  for (uint32_t t : set_.sig_token_ids()[s]) {
    if (!seen[t]) return false;
  }
  return true;
}

size_t CompiledSignatureSet::MatchInto(std::string_view content,
                                       std::string_view host_domain,
                                       MatchScratch* scratch) const {
  scratch->hits.clear();
  if (set_.empty() || num_states_ == 0) return 0;

  ScanTokens(content, scratch);
  for (size_t s = 0; s < set_.signatures().size(); ++s) {
    if (SignatureHolds(s, host_domain, *scratch)) scratch->hits.push_back(s);
  }
  return scratch->hits.size();
}

size_t CompiledSignatureSet::MatchIntoPrefiltered(
    std::string_view content, std::string_view host_domain,
    MatchScratch* scratch, prefilter::Mode mode,
    PrefilterOutcome* outcome) const {
  if (mode == prefilter::Mode::kOff || set_.empty() || num_states_ == 0) {
    if (outcome != nullptr) *outcome = PrefilterOutcome::kDisabled;
    return MatchInto(content, host_domain, scratch);
  }

  if (!prefilter_.Scan(content, &scratch->prefilter, mode)) {
    // No candidate bit set: by the no-false-negative invariant no
    // signature's tokens can all occur, so the DFA scan is skipped.
    if (outcome != nullptr) *outcome = PrefilterOutcome::kSkipped;
    scratch->hits.clear();
    return 0;
  }

  scratch->hits.clear();
  ScanTokens(content, scratch);
  // Exact matching restricted to candidates. Ascending signature order, so
  // hits come out identical to MatchInto (candidates are a superset of the
  // true matches).
  const std::vector<uint64_t>& bits = scratch->prefilter.bits;
  for (size_t word = 0; word < bits.size(); ++word) {
    uint64_t pending = bits[word];
    while (pending != 0) {
      size_t s = word * 64 + static_cast<size_t>(__builtin_ctzll(pending));
      pending &= pending - 1;
      if (SignatureHolds(s, host_domain, *scratch)) scratch->hits.push_back(s);
    }
  }
  if (outcome != nullptr) {
    *outcome = scratch->hits.empty() ? PrefilterOutcome::kCandidateMiss
                                     : PrefilterOutcome::kCandidateHit;
  }
  return scratch->hits.size();
}

}  // namespace leakdet::match
