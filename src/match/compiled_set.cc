#include "match/compiled_set.h"

namespace leakdet::match {

CompiledSignatureSet::CompiledSignatureSet(SignatureSet set, uint64_t version)
    : set_(std::move(set)), version_(version) {
  num_tokens_ = set_.vocab().size();
  const AhoCorasick* automaton = set_.automaton();
  if (automaton == nullptr || num_tokens_ == 0) return;

  num_states_ = automaton->num_nodes();
  next_.resize(num_states_ * 256);
  out_begin_.reserve(num_states_ + 1);
  out_begin_.push_back(0);
  for (size_t s = 0; s < num_states_; ++s) {
    int32_t state = static_cast<int32_t>(s);
    for (int c = 0; c < 256; ++c) {
      next_[s * 256 + static_cast<size_t>(c)] =
          automaton->Step(state, static_cast<uint8_t>(c));
    }
    for (uint32_t id : automaton->OutputClosure(state)) {
      out_patterns_.push_back(id);
    }
    out_begin_.push_back(static_cast<uint32_t>(out_patterns_.size()));
  }
}

size_t CompiledSignatureSet::MatchInto(std::string_view content,
                                       std::string_view host_domain,
                                       MatchScratch* scratch) const {
  scratch->hits.clear();
  if (set_.empty() || num_states_ == 0) return 0;

  scratch->seen.assign(num_tokens_, 0);
  uint8_t* seen = scratch->seen.data();
  const int32_t* next = next_.data();
  size_t marked = 0;
  int32_t state = 0;
  for (char ch : content) {
    state = next[static_cast<size_t>(state) * 256 + static_cast<uint8_t>(ch)];
    uint32_t begin = out_begin_[static_cast<size_t>(state)];
    uint32_t end = out_begin_[static_cast<size_t>(state) + 1];
    for (uint32_t i = begin; i < end; ++i) {
      uint8_t& bit = seen[out_patterns_[i]];
      if (!bit) {
        bit = 1;
        ++marked;
      }
    }
    if (marked == num_tokens_) break;  // every token already found
  }

  const std::vector<ConjunctionSignature>& sigs = set_.signatures();
  const std::vector<std::vector<uint32_t>>& sig_tokens = set_.sig_token_ids();
  for (size_t s = 0; s < sigs.size(); ++s) {
    const ConjunctionSignature& sig = sigs[s];
    if (!sig.host_scope.empty() && !host_domain.empty() &&
        sig.host_scope != host_domain) {
      continue;
    }
    if (sig.tokens.empty()) continue;  // never match an empty conjunction
    bool all = true;
    for (uint32_t t : sig_tokens[s]) {
      if (!seen[t]) {
        all = false;
        break;
      }
    }
    if (all) scratch->hits.push_back(s);
  }
  return scratch->hits.size();
}

}  // namespace leakdet::match
