#include "match/bayes_signature.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "util/strutil.h"

namespace leakdet::match {

double BayesSignature::Score(std::string_view content) const {
  double score = 0;
  for (const WeightedToken& wt : tokens) {
    if (content.find(wt.token) != std::string_view::npos) {
      score += wt.weight;
    }
  }
  return score;
}

bool BayesSignature::Matches(std::string_view content) const {
  return Score(content) >= threshold;
}

BayesSignatureSet::BayesSignatureSet(std::vector<BayesSignature> signatures)
    : signatures_(std::move(signatures)) {
  BuildIndex();
}

BayesSignatureSet::BayesSignatureSet(const BayesSignatureSet& other)
    : signatures_(other.signatures_) {
  BuildIndex();
}

BayesSignatureSet& BayesSignatureSet::operator=(
    const BayesSignatureSet& other) {
  if (this != &other) {
    signatures_ = other.signatures_;
    BuildIndex();
  }
  return *this;
}

void BayesSignatureSet::BuildIndex() {
  vocab_.clear();
  token_refs_.clear();
  std::unordered_map<std::string, uint32_t> vocab_index;
  for (size_t s = 0; s < signatures_.size(); ++s) {
    for (const WeightedToken& wt : signatures_[s].tokens) {
      auto [it, inserted] =
          vocab_index.emplace(wt.token, static_cast<uint32_t>(vocab_.size()));
      if (inserted) {
        vocab_.push_back(wt.token);
        token_refs_.emplace_back();
      }
      token_refs_[it->second].emplace_back(static_cast<uint32_t>(s),
                                           wt.weight);
    }
  }
  automaton_ = std::make_unique<AhoCorasick>(vocab_);
}

std::vector<double> BayesSignatureSet::Scores(std::string_view content) const {
  std::vector<double> scores(signatures_.size(), 0.0);
  if (signatures_.empty()) return scores;
  std::vector<bool> seen(vocab_.size(), false);
  automaton_->MarkPresent(content, &seen);
  for (size_t v = 0; v < vocab_.size(); ++v) {
    if (!seen[v]) continue;
    for (auto [sig, weight] : token_refs_[v]) {
      scores[sig] += weight;
    }
  }
  return scores;
}

std::vector<size_t> BayesSignatureSet::Match(std::string_view content) const {
  std::vector<size_t> hits;
  std::vector<double> scores = Scores(content);
  for (size_t s = 0; s < signatures_.size(); ++s) {
    if (!signatures_[s].tokens.empty() &&
        scores[s] >= signatures_[s].threshold) {
      hits.push_back(s);
    }
  }
  return hits;
}

bool BayesSignatureSet::Matches(std::string_view content) const {
  return !Match(content).empty();
}

std::string BayesSignatureSet::Serialize() const {
  std::string out = "leakdet-bayes-signatures v1\n";
  char buf[64];
  for (const BayesSignature& sig : signatures_) {
    out += "signature " + sig.id + "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", sig.threshold);
    out += std::string("threshold ") + buf + "\n";
    out += "cluster_size " + std::to_string(sig.cluster_size) + "\n";
    for (const WeightedToken& wt : sig.tokens) {
      std::snprintf(buf, sizeof(buf), "%.17g", wt.weight);
      out += std::string("token ") + buf + " " + HexEncode(wt.token) + "\n";
    }
    out += "end\n";
  }
  return out;
}

StatusOr<BayesSignatureSet> BayesSignatureSet::Deserialize(
    std::string_view text) {
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.empty() ||
      TrimWhitespace(lines[0]) != "leakdet-bayes-signatures v1") {
    return Status::Corruption("bad bayes signature file header");
  }
  std::vector<BayesSignature> sigs;
  size_t i = 1;
  while (i < lines.size()) {
    std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty()) {
      ++i;
      continue;
    }
    if (!line.starts_with("signature ")) {
      return Status::Corruption("expected 'signature <id>' line");
    }
    BayesSignature sig;
    sig.id = std::string(line.substr(10));
    ++i;
    bool closed = false;
    while (i < lines.size()) {
      std::string_view body = TrimWhitespace(lines[i]);
      ++i;
      if (body == "end") {
        closed = true;
        break;
      }
      if (body.starts_with("threshold ")) {
        sig.threshold = std::atof(std::string(body.substr(10)).c_str());
      } else if (body.starts_with("cluster_size ")) {
        LEAKDET_ASSIGN_OR_RETURN(uint64_t n, ParseUint64(body.substr(13)));
        sig.cluster_size = static_cast<uint32_t>(n);
      } else if (body.starts_with("token ")) {
        std::string_view rest = body.substr(6);
        size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return Status::Corruption("bayes token needs weight and hex");
        }
        WeightedToken wt;
        wt.weight = std::atof(std::string(rest.substr(0, sp)).c_str());
        LEAKDET_ASSIGN_OR_RETURN(wt.token, HexDecode(rest.substr(sp + 1)));
        sig.tokens.push_back(std::move(wt));
      } else if (!body.empty()) {
        return Status::Corruption("unknown bayes signature attribute");
      }
    }
    if (!closed) return Status::Corruption("unterminated signature block");
    sigs.push_back(std::move(sig));
  }
  return BayesSignatureSet(std::move(sigs));
}

}  // namespace leakdet::match
