#ifndef LEAKDET_MATCH_SUBSEQUENCE_SIGNATURE_H_
#define LEAKDET_MATCH_SUBSEQUENCE_SIGNATURE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "match/aho_corasick.h"
#include "util/statusor.h"

namespace leakdet::match {

/// A token-subsequence signature (the middle member of the Polygraph family
/// between conjunction and Bayes): the tokens must appear *in order*, each
/// occurrence starting at or after the end of the previous one. Stricter
/// than a conjunction — field order is part of the match — which buys
/// precision against benign packets that happen to contain all tokens in a
/// different arrangement.
struct SubsequenceSignature {
  std::string id;
  std::vector<std::string> tokens;  ///< required order of appearance
  std::string host_scope;           ///< "" = every destination
  uint32_t cluster_size = 0;

  /// True iff the tokens occur in order, non-overlapping, in `content`.
  bool Matches(std::string_view content) const;

  friend bool operator==(const SubsequenceSignature& a,
                         const SubsequenceSignature& b) {
    return a.id == b.id && a.tokens == b.tokens &&
           a.host_scope == b.host_scope && a.cluster_size == b.cluster_size;
  }
};

/// A deployed set of subsequence signatures. A shared Aho–Corasick automaton
/// pre-filters (a signature can only match when every token is present
/// somewhere); ordered verification then runs per surviving signature.
class SubsequenceSignatureSet {
 public:
  SubsequenceSignatureSet() = default;
  explicit SubsequenceSignatureSet(std::vector<SubsequenceSignature> sigs);

  SubsequenceSignatureSet(const SubsequenceSignatureSet& other);
  SubsequenceSignatureSet& operator=(const SubsequenceSignatureSet& other);
  SubsequenceSignatureSet(SubsequenceSignatureSet&&) = default;
  SubsequenceSignatureSet& operator=(SubsequenceSignatureSet&&) = default;

  /// Indices of matching signatures (host scope enforced when
  /// `host_domain` is non-empty).
  std::vector<size_t> Match(std::string_view content,
                            std::string_view host_domain = {}) const;

  bool Matches(std::string_view content,
               std::string_view host_domain = {}) const;

  const std::vector<SubsequenceSignature>& signatures() const {
    return signatures_;
  }
  size_t size() const { return signatures_.size(); }
  bool empty() const { return signatures_.empty(); }

  /// Line-oriented serialization (same envelope as the other families).
  std::string Serialize() const;
  static StatusOr<SubsequenceSignatureSet> Deserialize(std::string_view text);

 private:
  void BuildIndex();

  std::vector<SubsequenceSignature> signatures_;
  std::vector<std::string> vocab_;
  std::vector<std::vector<uint32_t>> sig_tokens_;  // vocab ids per signature
  std::unique_ptr<AhoCorasick> automaton_;
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_SUBSEQUENCE_SIGNATURE_H_
