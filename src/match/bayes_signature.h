#ifndef LEAKDET_MATCH_BAYES_SIGNATURE_H_
#define LEAKDET_MATCH_BAYES_SIGNATURE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "match/aho_corasick.h"
#include "util/statusor.h"

namespace leakdet::match {

/// One weighted token of a probabilistic signature.
struct WeightedToken {
  std::string token;
  double weight = 0;  ///< log-odds contribution when the token is present
};

/// A probabilistic (Polygraph-Bayes-style) signature: each token carries a
/// log-odds weight learned from how often it appears in leaking vs normal
/// traffic; a packet matches when the sum of present-token weights reaches
/// the threshold. The paper names this family (refs [14], [30]) as future
/// work for improving detection of polymorphic leakage — unlike a
/// conjunction, a Bayes signature still fires when a module drops or
/// reorders *some* template fields.
struct BayesSignature {
  std::string id;
  std::vector<WeightedToken> tokens;
  double threshold = 0;
  uint32_t cluster_size = 0;

  /// Score of a content string: sum of weights of present tokens.
  double Score(std::string_view content) const;

  /// True iff Score(content) >= threshold.
  bool Matches(std::string_view content) const;
};

/// A deployed set of Bayes signatures sharing one Aho–Corasick automaton
/// over the token vocabulary: scoring every signature is one scan.
class BayesSignatureSet {
 public:
  BayesSignatureSet() = default;
  explicit BayesSignatureSet(std::vector<BayesSignature> signatures);

  BayesSignatureSet(const BayesSignatureSet& other);
  BayesSignatureSet& operator=(const BayesSignatureSet& other);
  BayesSignatureSet(BayesSignatureSet&&) = default;
  BayesSignatureSet& operator=(BayesSignatureSet&&) = default;

  /// Indices of signatures whose score reaches their threshold on `content`.
  std::vector<size_t> Match(std::string_view content) const;

  /// True iff any signature matches.
  bool Matches(std::string_view content) const;

  /// Per-signature scores (diagnostics / ROC sweeps).
  std::vector<double> Scores(std::string_view content) const;

  const std::vector<BayesSignature>& signatures() const { return signatures_; }
  size_t size() const { return signatures_.size(); }
  bool empty() const { return signatures_.empty(); }

  /// Line-oriented serialization (tokens hex-encoded, weights as decimals).
  std::string Serialize() const;
  static StatusOr<BayesSignatureSet> Deserialize(std::string_view text);

 private:
  void BuildIndex();

  std::vector<BayesSignature> signatures_;
  std::vector<std::string> vocab_;
  // For vocab token v: list of (signature index, weight).
  std::vector<std::vector<std::pair<uint32_t, double>>> token_refs_;
  std::unique_ptr<AhoCorasick> automaton_;
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_BAYES_SIGNATURE_H_
