#include "match/aho_corasick.h"

#include <deque>

namespace leakdet::match {

AhoCorasick::AhoCorasick(const std::vector<std::string>& patterns) {
  nodes_.emplace_back();  // root
  num_patterns_ = patterns.size();
  for (uint32_t id = 0; id < patterns.size(); ++id) {
    const std::string& p = patterns[id];
    if (p.empty()) continue;
    int32_t cur = 0;
    for (char ch : p) {
      uint8_t c = static_cast<uint8_t>(ch);
      auto it = nodes_[static_cast<size_t>(cur)].next.find(c);
      if (it == nodes_[static_cast<size_t>(cur)].next.end()) {
        nodes_.emplace_back();
        int32_t nxt = static_cast<int32_t>(nodes_.size() - 1);
        nodes_[static_cast<size_t>(cur)].next.emplace(c, nxt);
        cur = nxt;
      } else {
        cur = it->second;
      }
    }
    nodes_[static_cast<size_t>(cur)].out.push_back(id);
  }
  BuildFailureLinks();
}

void AhoCorasick::BuildFailureLinks() {
  std::deque<int32_t> queue;
  for (auto& [c, child] : nodes_[0].next) {
    nodes_[static_cast<size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int32_t u = queue.front();
    queue.pop_front();
    Node& nu = nodes_[static_cast<size_t>(u)];
    // Report link: nearest fail-ancestor with output.
    int32_t f = nu.fail;
    const Node& nf = nodes_[static_cast<size_t>(f)];
    nu.report = nf.out.empty() ? nf.report : f;
    for (auto& [c, v] : nu.next) {
      // Find the fail target for child v.
      int32_t f2 = nu.fail;
      while (f2 != 0 && !nodes_[static_cast<size_t>(f2)].next.count(c)) {
        f2 = nodes_[static_cast<size_t>(f2)].fail;
      }
      auto it = nodes_[static_cast<size_t>(f2)].next.find(c);
      int32_t target =
          (it != nodes_[static_cast<size_t>(f2)].next.end() && it->second != v)
              ? it->second
              : 0;
      nodes_[static_cast<size_t>(v)].fail = target;
      queue.push_back(v);
    }
  }
}

int32_t AhoCorasick::Step(int32_t state, uint8_t c) const {
  while (true) {
    auto it = nodes_[static_cast<size_t>(state)].next.find(c);
    if (it != nodes_[static_cast<size_t>(state)].next.end()) {
      return it->second;
    }
    if (state == 0) return 0;
    state = nodes_[static_cast<size_t>(state)].fail;
  }
}

std::vector<uint32_t> AhoCorasick::OutputClosure(int32_t state) const {
  std::vector<uint32_t> out;
  for (int32_t r = state; r != -1; r = nodes_[static_cast<size_t>(r)].report) {
    const Node& n = nodes_[static_cast<size_t>(r)];
    out.insert(out.end(), n.out.begin(), n.out.end());
  }
  return out;
}

std::vector<AhoCorasick::Match> AhoCorasick::FindAll(
    std::string_view text) const {
  std::vector<Match> matches;
  int32_t state = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    state = Step(state, static_cast<uint8_t>(text[i]));
    for (int32_t r = state; r != -1;
         r = nodes_[static_cast<size_t>(r)].report) {
      for (uint32_t id : nodes_[static_cast<size_t>(r)].out) {
        matches.push_back(Match{id, i + 1});
      }
    }
  }
  return matches;
}

void AhoCorasick::MarkPresent(std::string_view text,
                              std::vector<bool>* seen) const {
  int32_t state = 0;
  for (char ch : text) {
    state = Step(state, static_cast<uint8_t>(ch));
    for (int32_t r = state; r != -1;
         r = nodes_[static_cast<size_t>(r)].report) {
      for (uint32_t id : nodes_[static_cast<size_t>(r)].out) {
        (*seen)[id] = true;
      }
    }
  }
}

bool AhoCorasick::AnyMatch(std::string_view text) const {
  int32_t state = 0;
  for (char ch : text) {
    state = Step(state, static_cast<uint8_t>(ch));
    const Node& n = nodes_[static_cast<size_t>(state)];
    if (!n.out.empty() || n.report != -1) return true;
  }
  return false;
}

}  // namespace leakdet::match
