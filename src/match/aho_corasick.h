#ifndef LEAKDET_MATCH_AHO_CORASICK_H_
#define LEAKDET_MATCH_AHO_CORASICK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace leakdet::match {

/// Aho–Corasick multi-pattern matcher. Built once over the token vocabulary
/// of a signature set; a single pass over a packet then reports every token
/// occurrence, which makes conjunction-signature evaluation O(packet bytes +
/// matches) regardless of how many signatures are deployed.
class AhoCorasick {
 public:
  /// Builds the automaton. Empty patterns are ignored; duplicate patterns
  /// share one id (the first). Pattern ids are indices into `patterns`.
  explicit AhoCorasick(const std::vector<std::string>& patterns);

  /// One pattern occurrence in a scanned text.
  struct Match {
    uint32_t pattern;  ///< index into the constructor's `patterns`
    size_t end;        ///< exclusive end offset in the text
  };

  /// All pattern occurrences in `text` (including overlapping ones).
  std::vector<Match> FindAll(std::string_view text) const;

  /// Sets `seen[p] = true` for every pattern p occurring in `text`.
  /// `seen->size()` must equal num_patterns(). Cheaper than FindAll when only
  /// presence matters (conjunction evaluation).
  void MarkPresent(std::string_view text, std::vector<bool>* seen) const;

  /// True iff any pattern occurs in `text`.
  bool AnyMatch(std::string_view text) const;

  size_t num_patterns() const { return num_patterns_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Resolved goto transition: the state reached from `state` on byte `c`
  /// after following failure links (i.e. the delta function of the
  /// equivalent DFA). Exposed so CompiledSignatureSet can flatten the
  /// automaton into a dense transition table.
  int32_t Step(int32_t state, uint8_t c) const;

  /// Every pattern that ends at `state`, including those reached through the
  /// report (fail-output) chain. Companion of Step() for DFA flattening.
  std::vector<uint32_t> OutputClosure(int32_t state) const;

 private:
  struct Node {
    std::map<uint8_t, int32_t> next;
    int32_t fail = 0;
    int32_t report = -1;          ///< next node up the fail chain with output
    std::vector<uint32_t> out;    ///< patterns ending here
  };

  void BuildFailureLinks();

  std::vector<Node> nodes_;
  size_t num_patterns_ = 0;
};

}  // namespace leakdet::match

#endif  // LEAKDET_MATCH_AHO_CORASICK_H_
