#include "match/subsequence_signature.h"

#include <unordered_map>

#include "util/strutil.h"

namespace leakdet::match {

bool SubsequenceSignature::Matches(std::string_view content) const {
  if (tokens.empty()) return false;
  size_t offset = 0;
  for (const std::string& tok : tokens) {
    size_t pos = content.find(tok, offset);
    if (pos == std::string_view::npos) return false;
    offset = pos + tok.size();
  }
  return true;
}

SubsequenceSignatureSet::SubsequenceSignatureSet(
    std::vector<SubsequenceSignature> sigs)
    : signatures_(std::move(sigs)) {
  BuildIndex();
}

SubsequenceSignatureSet::SubsequenceSignatureSet(
    const SubsequenceSignatureSet& other)
    : signatures_(other.signatures_) {
  BuildIndex();
}

SubsequenceSignatureSet& SubsequenceSignatureSet::operator=(
    const SubsequenceSignatureSet& other) {
  if (this != &other) {
    signatures_ = other.signatures_;
    BuildIndex();
  }
  return *this;
}

void SubsequenceSignatureSet::BuildIndex() {
  vocab_.clear();
  sig_tokens_.clear();
  std::unordered_map<std::string, uint32_t> vocab_index;
  for (const SubsequenceSignature& sig : signatures_) {
    std::vector<uint32_t> ids;
    for (const std::string& tok : sig.tokens) {
      auto [it, inserted] =
          vocab_index.emplace(tok, static_cast<uint32_t>(vocab_.size()));
      if (inserted) vocab_.push_back(tok);
      ids.push_back(it->second);
    }
    sig_tokens_.push_back(std::move(ids));
  }
  automaton_ = std::make_unique<AhoCorasick>(vocab_);
}

std::vector<size_t> SubsequenceSignatureSet::Match(
    std::string_view content, std::string_view host_domain) const {
  std::vector<size_t> hits;
  if (signatures_.empty()) return hits;
  // Presence pre-filter: ordered verification only for signatures whose
  // tokens all occur somewhere.
  std::vector<bool> seen(vocab_.size(), false);
  automaton_->MarkPresent(content, &seen);
  for (size_t s = 0; s < signatures_.size(); ++s) {
    const SubsequenceSignature& sig = signatures_[s];
    if (!sig.host_scope.empty() && !host_domain.empty() &&
        sig.host_scope != host_domain) {
      continue;
    }
    bool all_present = !sig_tokens_[s].empty();
    for (uint32_t t : sig_tokens_[s]) {
      if (!seen[t]) {
        all_present = false;
        break;
      }
    }
    if (all_present && sig.Matches(content)) hits.push_back(s);
  }
  return hits;
}

bool SubsequenceSignatureSet::Matches(std::string_view content,
                                      std::string_view host_domain) const {
  return !Match(content, host_domain).empty();
}

std::string SubsequenceSignatureSet::Serialize() const {
  std::string out = "leakdet-subseq-signatures v1\n";
  for (const SubsequenceSignature& sig : signatures_) {
    out += "signature " + sig.id + "\n";
    out += "host " + (sig.host_scope.empty() ? "-" : sig.host_scope) + "\n";
    out += "cluster_size " + std::to_string(sig.cluster_size) + "\n";
    for (const std::string& tok : sig.tokens) {
      out += "token " + HexEncode(tok) + "\n";
    }
    out += "end\n";
  }
  return out;
}

StatusOr<SubsequenceSignatureSet> SubsequenceSignatureSet::Deserialize(
    std::string_view text) {
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.empty() ||
      TrimWhitespace(lines[0]) != "leakdet-subseq-signatures v1") {
    return Status::Corruption("bad subsequence signature file header");
  }
  std::vector<SubsequenceSignature> sigs;
  size_t i = 1;
  while (i < lines.size()) {
    std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty()) {
      ++i;
      continue;
    }
    if (!line.starts_with("signature ")) {
      return Status::Corruption("expected 'signature <id>' line");
    }
    SubsequenceSignature sig;
    sig.id = std::string(line.substr(10));
    ++i;
    bool closed = false;
    while (i < lines.size()) {
      std::string_view body = TrimWhitespace(lines[i]);
      ++i;
      if (body == "end") {
        closed = true;
        break;
      }
      if (body.starts_with("host ")) {
        std::string_view h = body.substr(5);
        sig.host_scope = (h == "-") ? "" : std::string(h);
      } else if (body.starts_with("cluster_size ")) {
        LEAKDET_ASSIGN_OR_RETURN(uint64_t n, ParseUint64(body.substr(13)));
        sig.cluster_size = static_cast<uint32_t>(n);
      } else if (body.starts_with("token ")) {
        LEAKDET_ASSIGN_OR_RETURN(std::string tok, HexDecode(body.substr(6)));
        sig.tokens.push_back(std::move(tok));
      } else if (!body.empty()) {
        return Status::Corruption("unknown signature attribute line");
      }
    }
    if (!closed) return Status::Corruption("unterminated signature block");
    sigs.push_back(std::move(sig));
  }
  return SubsequenceSignatureSet(std::move(sigs));
}

}  // namespace leakdet::match
