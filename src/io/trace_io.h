#ifndef LEAKDET_IO_TRACE_IO_H_
#define LEAKDET_IO_TRACE_IO_H_

#include <string>
#include <vector>

#include "sim/trafficgen.h"
#include "util/statusor.h"

namespace leakdet::io {

/// Serializes labeled packets as JSON Lines (one object per packet):
///   {"app":12,"host":"r.admob.com","ip":"74.125.3.7","port":80,
///    "rline":"GET ... HTTP/1.1","cookie":"","body":"","truth":[1]}
/// All byte values survive round-tripping (non-printable bytes are \u00XX
/// escaped).
std::string SerializeJsonl(const std::vector<sim::LabeledPacket>& packets);

/// Parses the SerializeJsonl format. Fails with Corruption on any malformed
/// line; blank lines are skipped.
StatusOr<std::vector<sim::LabeledPacket>> ParseJsonl(std::string_view text);

/// One packet as a single JSON object (the JSONL line format without truth
/// labels or trailing newline). The durable store frames WAL records around
/// exactly this encoding.
std::string SerializePacketJson(const core::HttpPacket& packet);

/// SerializePacketJson appended to `*out` without the intermediate string —
/// the WAL writer encodes straight into its staged batch.
void AppendPacketJson(const core::HttpPacket& packet, std::string* out);

/// Parses the SerializePacketJson format (a truth field, if present, is
/// accepted and ignored).
StatusOr<core::HttpPacket> ParsePacketJson(std::string_view line);

/// CSV with header "app,host,ip,port,rline,cookie,body,truth"; fields are
/// RFC 4180 quoted, truth is ';'-separated type ids.
std::string SerializeCsv(const std::vector<sim::LabeledPacket>& packets);

/// Parses the SerializeCsv format (header required).
StatusOr<std::vector<sim::LabeledPacket>> ParseCsv(std::string_view text);

/// Serializes the experimenter's device-token registry as "key value" lines
/// (android_id / imei / imsi / sim_serial / carrier; one block per device,
/// blank-line separated). The input to the payload check.
std::string SerializeDeviceTokens(const std::vector<core::DeviceTokens>& devices);

/// Parses the SerializeDeviceTokens format.
StatusOr<std::vector<core::DeviceTokens>> ParseDeviceTokens(
    std::string_view text);

/// File helpers. WriteFile is crash-atomic: the contents are written to a
/// temporary file in the same directory, fsynced, renamed over `path`, and
/// the parent directory is fsynced — a crash at any point leaves either the
/// old file or the complete new one, never a truncated hybrid.
Status WriteFile(const std::string& path, std::string_view contents);
StatusOr<std::string> ReadFile(const std::string& path);

}  // namespace leakdet::io

#endif  // LEAKDET_IO_TRACE_IO_H_
