#ifndef LEAKDET_IO_FEED_SERVER_H_
#define LEAKDET_IO_FEED_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "net/stream.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/statusor.h"

namespace leakdet::io {

/// Tunables for FeedServer. Defaults serve production; tests inject a
/// virtual clock and scripted listeners to make every deadline deterministic.
struct FeedServerOptions {
  /// Total budget for one connection to deliver its request, in ms. This is
  /// a whole-request deadline, not a per-read timeout: a client trickling
  /// one byte per read cannot extend it. A connection that exceeds it with a
  /// partial request receives 408 Request Timeout; one that sent nothing is
  /// silently dropped.
  int request_deadline_ms = 2000;
  /// Time source for the request deadline. nullptr = Clock::Real().
  Clock* clock = nullptr;
  /// Metrics destination for the feedserver.requests outcome family and the
  /// request-duration histogram. nullptr = obs::Registry::Default().
  obs::Registry* registry = nullptr;
};

/// The signature-distribution half of Figure 3(a) over real HTTP: a tiny
/// loopback server exposing
///   GET /feed     -> the current serialized signature set
///                    (X-Feed-Version carries the version, X-Feed-Digest its
///                    SHA-1 — clients verify end-to-end integrity)
///   GET /version  -> the version number as a decimal body
/// Devices poll /version and re-fetch /feed when it advances.
class FeedServer {
 public:
  /// Returns the current (version, serialized feed). Called per request from
  /// the server thread; must be thread-safe on the caller's side.
  using FeedProvider = std::function<std::pair<uint64_t, std::string>()>;

  /// Namespaced provider for multi-tenant deployments: requests carrying
  /// `?tenant=<name>` resolve through this instead of the default provider.
  /// Returning nullopt means "no such tenant" (the request gets 404 — an
  /// unknown tenant must not silently receive another tenant's feed).
  using TenantFeedProvider =
      std::function<std::optional<std::pair<uint64_t, std::string>>(
          const std::string& tenant)>;

  /// Handler for an extra route (see AddRoute). Receives the request's raw
  /// query string ("" if none) and returns the (version, payload) pair to
  /// serve — delivered exactly like /feed, with X-Feed-Version and an
  /// X-Feed-Digest the client verifies end-to-end. Errors map to HTTP:
  /// NotFound/InvalidArgument -> 404/400, anything else -> 503. Called from
  /// the server thread; must be thread-safe.
  using RouteHandler =
      std::function<StatusOr<std::pair<uint64_t, std::string>>(
          const std::string& raw_query)>;

  explicit FeedServer(FeedProvider provider, FeedServerOptions options = {})
      : provider_(std::move(provider)),
        options_(options),
        registry_(options.registry != nullptr ? options.registry
                                              : obs::Registry::Default()),
        outcomes_(registry_, "feedserver.requests", "outcome"),
        request_ns_(registry_->GetHistogram("feedserver.request_ns")) {}

  /// Back-compat form: `read_timeout_ms` is the whole-request budget.
  FeedServer(FeedProvider provider, int read_timeout_ms)
      : FeedServer(std::move(provider),
                   FeedServerOptions{.request_deadline_ms = read_timeout_ms}) {}

  ~FeedServer();
  FeedServer(const FeedServer&) = delete;
  FeedServer& operator=(const FeedServer&) = delete;

  /// Installs the tenant provider (federation hubs pass
  /// FederationHub::TenantFeed). Set before Start(), like the listener.
  /// Without one, tenant-qualified requests 404.
  void set_tenant_provider(TenantFeedProvider provider) {
    tenant_provider_ = std::move(provider);
  }

  /// Registers an extra GET route (e.g. "/replog", "/snapshot" for the
  /// cluster replication plane), served through the same digest-integrity
  /// path as /feed. Set before Start(), like the listener; replaces any
  /// previous handler for the same path. Reserved paths (/feed, /version)
  /// are rejected.
  Status AddRoute(const std::string& path, RouteHandler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port = 0);

  /// Starts the accept loop on an injected transport (testing seam: a
  /// testing::ScriptedListener delivers fault-scripted connections).
  Status Start(std::unique_ptr<net::Listener> listener);

  /// Stops the accept loop and joins the server thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Requests served so far (observability for tests).
  uint64_t requests_served() const { return requests_served_.load(); }

  /// Connections whose request never completed inside the deadline.
  uint64_t requests_timed_out() const { return requests_timed_out_.load(); }

 private:
  void Serve();
  void Handle(std::unique_ptr<net::Stream> stream);

  FeedProvider provider_;
  TenantFeedProvider tenant_provider_;
  std::map<std::string, RouteHandler> routes_;
  FeedServerOptions options_;
  // Every handled connection lands in exactly one outcome series:
  // ok / not_found / method_not_allowed / bad_request / timeout / dropped.
  obs::Registry* registry_;
  obs::CounterFamily outcomes_;
  obs::Histogram* request_ns_;
  std::unique_ptr<net::Listener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_timed_out_{0};
  uint16_t port_ = 0;
};

/// Result of one feed fetch.
struct FetchedFeed {
  uint64_t version = 0;
  std::string payload;
};

/// Device-side client: GET /feed from a loopback FeedServer. When the
/// response carries X-Feed-Digest, the payload is verified against it and a
/// Corruption status is returned on mismatch (a fetch never silently
/// delivers a damaged feed). Non-empty `tenant` fetches that tenant's
/// namespaced feed (`?tenant=...`); NotFound if the server has no such
/// tenant.
StatusOr<FetchedFeed> FetchFeed(uint16_t port, const std::string& tenant = "");

/// Device-side client: GET /version only (cheap poll). `tenant` as above.
StatusOr<uint64_t> FetchFeedVersion(uint16_t port,
                                    const std::string& tenant = "");

/// Transport-injected forms of the fetch helpers (testing seam). The stream
/// must be freshly connected; it is consumed by the request/response cycle.
StatusOr<FetchedFeed> FetchFeedFrom(net::Stream* stream,
                                    const std::string& tenant = "");
StatusOr<uint64_t> FetchFeedVersionFrom(net::Stream* stream,
                                        const std::string& tenant = "");

/// One GET of an arbitrary digest-protected target ("/replog?after=7",
/// "/snapshot", ...) against a FeedServer — the client half of AddRoute.
/// Exactly FetchFeedFrom's contract: NotFound on a non-200, Corruption when
/// the payload fails its X-Feed-Digest.
StatusOr<FetchedFeed> FetchPathFrom(net::Stream* stream,
                                    const std::string& target);

}  // namespace leakdet::io

#endif  // LEAKDET_IO_FEED_SERVER_H_
