#ifndef LEAKDET_IO_FEED_SERVER_H_
#define LEAKDET_IO_FEED_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/tcp.h"
#include "util/statusor.h"

namespace leakdet::io {

/// The signature-distribution half of Figure 3(a) over real HTTP: a tiny
/// loopback server exposing
///   GET /feed     -> the current serialized signature set
///                    (X-Feed-Version header carries the version)
///   GET /version  -> the version number as a decimal body
/// Devices poll /version and re-fetch /feed when it advances.
class FeedServer {
 public:
  /// Returns the current (version, serialized feed). Called per request from
  /// the server thread; must be thread-safe on the caller's side.
  using FeedProvider = std::function<std::pair<uint64_t, std::string>()>;

  /// `read_timeout_ms` bounds how long one connection may take to deliver
  /// its request; a client that connects and stalls is dropped after it so
  /// the (single-threaded) accept loop stays responsive to other devices.
  explicit FeedServer(FeedProvider provider, int read_timeout_ms = 2000)
      : provider_(std::move(provider)), read_timeout_ms_(read_timeout_ms) {}
  ~FeedServer();
  FeedServer(const FeedServer&) = delete;
  FeedServer& operator=(const FeedServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port = 0);

  /// Stops the accept loop and joins the server thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Requests served so far (observability for tests).
  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  void Serve();
  void Handle(net::TcpConnection connection);

  FeedProvider provider_;
  int read_timeout_ms_;
  net::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  uint16_t port_ = 0;
};

/// Result of one feed fetch.
struct FetchedFeed {
  uint64_t version = 0;
  std::string payload;
};

/// Device-side client: GET /feed from a loopback FeedServer.
StatusOr<FetchedFeed> FetchFeed(uint16_t port);

/// Device-side client: GET /version only (cheap poll).
StatusOr<uint64_t> FetchFeedVersion(uint16_t port);

}  // namespace leakdet::io

#endif  // LEAKDET_IO_FEED_SERVER_H_
