#include "io/pcap.h"

#include <cstring>

#include "http/message.h"
#include "http/parser.h"
#include "net/host.h"

namespace leakdet::io {

namespace {

constexpr uint32_t kPcapMagic = 0xA1B2C3D4;
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr uint32_t kSnapLen = 262144;
constexpr uint32_t kLinkTypeEthernet = 1;

constexpr uint32_t kClientIp = 0x0A000002;  // 10.0.0.2
constexpr size_t kEthLen = 14;
constexpr size_t kIpLen = 20;
constexpr size_t kTcpLen = 20;

void Put16(uint16_t v, std::string* out) {  // little-endian (file headers)
  *out += static_cast<char>(v & 0xFF);
  *out += static_cast<char>(v >> 8);
}
void Put32(uint32_t v, std::string* out) {
  *out += static_cast<char>(v & 0xFF);
  *out += static_cast<char>((v >> 8) & 0xFF);
  *out += static_cast<char>((v >> 16) & 0xFF);
  *out += static_cast<char>((v >> 24) & 0xFF);
}
void PutBe16(uint16_t v, std::string* out) {  // big-endian (wire fields)
  *out += static_cast<char>(v >> 8);
  *out += static_cast<char>(v & 0xFF);
}
void PutBe32(uint32_t v, std::string* out) {
  *out += static_cast<char>((v >> 24) & 0xFF);
  *out += static_cast<char>((v >> 16) & 0xFF);
  *out += static_cast<char>((v >> 8) & 0xFF);
  *out += static_cast<char>(v & 0xFF);
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Status Need(size_t n) const {
    if (pos_ + n > data_.size()) return Status::Corruption("pcap truncated");
    return Status::OK();
  }
  uint8_t U8() { return static_cast<uint8_t>(data_[pos_++]); }
  /// File-order 16-bit field (little-endian unless the capture's magic was
  /// byte-swapped relative to this reader).
  uint16_t U16() {
    uint16_t v = static_cast<uint8_t>(data_[pos_]) |
                 (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1]))
                  << 8);
    pos_ += 2;
    return swapped_ ? static_cast<uint16_t>((v >> 8) | (v << 8)) : v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    if (swapped_) {
      v = ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
          ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
    }
    return v;
  }
  void set_swapped(bool swapped) { swapped_ = swapped; }
  uint16_t Be16() {
    uint16_t v = (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_]))
                  << 8) |
                 static_cast<uint8_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  uint32_t Be32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }
  std::string_view Take(size_t n) {
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }
  void Skip(size_t n) { pos_ += n; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool swapped_ = false;
};

constexpr uint32_t kPcapMagicSwapped = 0xD4C3B2A1;

std::string BuildIpv4Header(uint32_t src, uint32_t dst, size_t tcp_and_payload,
                            uint16_t ident) {
  std::string h;
  h += static_cast<char>(0x45);  // version 4, IHL 5
  h += static_cast<char>(0x00);  // DSCP/ECN
  PutBe16(static_cast<uint16_t>(kIpLen + tcp_and_payload), &h);
  PutBe16(ident, &h);
  PutBe16(0x4000, &h);  // don't-fragment
  h += static_cast<char>(64);  // TTL
  h += static_cast<char>(6);   // protocol: TCP
  PutBe16(0, &h);              // checksum placeholder
  PutBe32(src, &h);
  PutBe32(dst, &h);
  uint16_t checksum = InternetChecksum(h);
  h[10] = static_cast<char>(checksum >> 8);
  h[11] = static_cast<char>(checksum & 0xFF);
  return h;
}

std::string BuildTcpHeader(uint16_t src_port, uint16_t dst_port, uint32_t seq,
                           uint32_t src_ip, uint32_t dst_ip,
                           std::string_view payload) {
  std::string h;
  PutBe16(src_port, &h);
  PutBe16(dst_port, &h);
  PutBe32(seq, &h);
  PutBe32(0, &h);              // ack
  h += static_cast<char>(0x50);  // data offset 5
  h += static_cast<char>(0x18);  // PSH|ACK
  PutBe16(65535, &h);          // window
  PutBe16(0, &h);              // checksum placeholder
  PutBe16(0, &h);              // urgent
  // TCP pseudo-header checksum: src, dst, zero/proto, tcp length.
  std::string pseudo;
  PutBe32(src_ip, &pseudo);
  PutBe32(dst_ip, &pseudo);
  pseudo += static_cast<char>(0);
  pseudo += static_cast<char>(6);
  PutBe16(static_cast<uint16_t>(h.size() + payload.size()), &pseudo);
  std::string checksummed = pseudo + h + std::string(payload);
  uint16_t checksum = InternetChecksum(checksummed);
  h[16] = static_cast<char>(checksum >> 8);
  h[17] = static_cast<char>(checksum & 0xFF);
  return h;
}

/// Rebuilds the wire form of a core packet (request line + Host + body).
std::string PayloadFor(const core::HttpPacket& packet) {
  std::string payload = packet.request_line;
  payload += "\r\n";
  payload += "Host: " + packet.destination.host + "\r\n";
  if (!packet.cookie.empty()) {
    payload += "Cookie: " + packet.cookie + "\r\n";
  }
  if (!packet.body.empty()) {
    payload += "Content-Length: " + std::to_string(packet.body.size()) +
               "\r\n";
  }
  payload += "\r\n";
  payload += packet.body;
  return payload;
}

}  // namespace

uint16_t InternetChecksum(std::string_view data, uint32_t seed) {
  uint32_t sum = seed;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<uint32_t>(static_cast<uint8_t>(data[i])) << 8) |
           static_cast<uint8_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(static_cast<uint8_t>(data[i])) << 8;
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xFFFF);
}

std::string PcapWriter::Write(
    const std::vector<core::HttpPacket>& packets) const {
  std::string out;
  // Global header.
  Put32(kPcapMagic, &out);
  Put16(kVersionMajor, &out);
  Put16(kVersionMinor, &out);
  Put32(0, &out);  // thiszone
  Put32(0, &out);  // sigfigs
  Put32(kSnapLen, &out);
  Put32(kLinkTypeEthernet, &out);

  uint16_t ident = 1;
  uint32_t usec = 0;
  uint32_t sec = base_time_sec_;
  for (const core::HttpPacket& p : packets) {
    std::string payload = PayloadFor(p);
    uint16_t src_port = static_cast<uint16_t>(1024 + (p.app_id % 60000));
    uint32_t dst_ip = p.destination.ip.value();
    std::string tcp = BuildTcpHeader(src_port, p.destination.port,
                                     /*seq=*/ident * 1000u, kClientIp, dst_ip,
                                     payload);
    std::string ip = BuildIpv4Header(kClientIp, dst_ip,
                                     tcp.size() + payload.size(), ident++);
    std::string eth;
    // Locally-administered MACs: server 02:...:01, client 02:...:02.
    const char kDstMac[6] = {0x02, 0x00, 0x5E, 0x00, 0x00, 0x01};
    const char kSrcMac[6] = {0x02, 0x00, 0x5E, 0x00, 0x00, 0x02};
    eth.append(kDstMac, 6);
    eth.append(kSrcMac, 6);
    PutBe16(0x0800, &eth);

    size_t frame_len = eth.size() + ip.size() + tcp.size() + payload.size();
    // Record header.
    Put32(sec, &out);
    Put32(usec, &out);
    Put32(static_cast<uint32_t>(frame_len), &out);
    Put32(static_cast<uint32_t>(frame_len), &out);
    out += eth;
    out += ip;
    out += tcp;
    out += payload;

    usec += 10000;  // 10 ms per packet
    if (usec >= 1000000) {
      usec -= 1000000;
      ++sec;
    }
  }
  return out;
}

StatusOr<std::vector<core::HttpPacket>> ReadPcap(std::string_view data) {
  Cursor cursor(data);
  LEAKDET_RETURN_IF_ERROR(cursor.Need(24));
  uint32_t magic = cursor.U32();
  if (magic == kPcapMagicSwapped) {
    // Capture written on an opposite-endianness host: every file-order
    // header field must be byte-swapped. Wire (network-order) fields inside
    // the frames are endianness-independent.
    cursor.set_swapped(true);
  } else if (magic != kPcapMagic) {
    return Status::Corruption("bad pcap magic");
  }
  cursor.U16();  // version major
  cursor.U16();  // version minor
  cursor.U32();  // thiszone
  cursor.U32();  // sigfigs
  cursor.U32();  // snaplen
  if (cursor.U32() != kLinkTypeEthernet) {
    return Status::Corruption("unsupported link type");
  }

  std::vector<core::HttpPacket> packets;
  while (!cursor.AtEnd()) {
    LEAKDET_RETURN_IF_ERROR(cursor.Need(16));
    cursor.U32();  // ts_sec
    cursor.U32();  // ts_usec
    uint32_t incl_len = cursor.U32();
    uint32_t orig_len = cursor.U32();
    if (incl_len != orig_len) {
      return Status::Corruption("truncated capture records unsupported");
    }
    LEAKDET_RETURN_IF_ERROR(cursor.Need(incl_len));
    if (incl_len < kEthLen + kIpLen + kTcpLen) {
      return Status::Corruption("frame too short");
    }
    size_t frame_end = cursor.pos() + incl_len;

    cursor.Skip(12);  // MACs
    if (cursor.Be16() != 0x0800) {
      return Status::Corruption("non-IPv4 ethertype");
    }
    // IPv4 header.
    size_t ip_start = cursor.pos();
    uint8_t vihl = cursor.U8();
    if (vihl != 0x45) return Status::Corruption("unexpected IPv4 IHL");
    cursor.U8();  // dscp
    uint16_t total_len = cursor.Be16();
    cursor.Be16();  // ident
    cursor.Be16();  // flags
    cursor.U8();    // ttl
    if (cursor.U8() != 6) return Status::Corruption("non-TCP protocol");
    cursor.Be16();  // checksum (verified below over the whole header)
    cursor.Be32();  // src ip
    uint32_t dst_ip = cursor.Be32();
    if (InternetChecksum(std::string_view(data.data() + ip_start, kIpLen)) !=
        0) {
      return Status::Corruption("IPv4 checksum mismatch");
    }
    if (ip_start + total_len > frame_end) {
      return Status::Corruption("IPv4 total length exceeds frame");
    }
    // TCP header.
    uint16_t src_port = cursor.Be16();
    uint16_t dst_port = cursor.Be16();
    cursor.Be32();  // seq
    cursor.Be32();  // ack
    uint8_t offset = cursor.U8();
    if ((offset >> 4) != 5) return Status::Corruption("TCP options unsupported");
    cursor.U8();    // flags
    cursor.Be16();  // window
    cursor.Be16();  // checksum
    cursor.Be16();  // urgent
    size_t payload_len = ip_start + total_len - cursor.pos();
    std::string_view payload = cursor.Take(payload_len);
    if (cursor.pos() != frame_end) {
      return Status::Corruption("trailing bytes in frame");
    }

    LEAKDET_ASSIGN_OR_RETURN(http::HttpRequest request,
                             http::ParseRequest(payload));
    core::HttpPacket packet;
    packet.app_id = static_cast<uint32_t>(src_port - 1024);
    packet.destination.ip = net::Ipv4Address(dst_ip);
    packet.destination.port = dst_port;
    packet.destination.host = net::NormalizeHost(request.host());
    packet.request_line = request.RequestLine();
    packet.cookie = std::string(request.cookie());
    packet.body = request.body();
    packets.push_back(std::move(packet));
  }
  return packets;
}

}  // namespace leakdet::io
