#include "io/trace_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/strutil.h"

namespace leakdet::io {

namespace {

// ---------------------------------------------------------------------------
// JSON primitives (only what the schema needs: objects with string, integer,
// and integer-array values).
// ---------------------------------------------------------------------------

void AppendJsonString(std::string_view s, std::string* out) {
  *out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
  *out += '"';
}

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::Corruption(std::string("expected '") + c + "' in JSON");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::Corruption("expected JSON string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Corruption("truncated \\u escape");
          }
          auto hex = HexDecode(text_.substr(pos_, 4));
          if (!hex.ok()) return Status::Corruption("bad \\u escape");
          pos_ += 4;
          uint16_t cp = static_cast<uint16_t>(
              (static_cast<uint8_t>((*hex)[0]) << 8) |
              static_cast<uint8_t>((*hex)[1]));
          if (cp > 0xFF) {
            return Status::Corruption("non-latin1 \\u escape unsupported");
          }
          out += static_cast<char>(cp);
          break;
        }
        default:
          return Status::Corruption("unknown JSON escape");
      }
    }
    return Status::Corruption("unterminated JSON string");
  }

  StatusOr<uint64_t> ParseUint() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) return Status::Corruption("expected JSON integer");
    return leakdet::ParseUint64(text_.substr(start, pos_ - start));
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<sim::LabeledPacket> ParseJsonLine(std::string_view line) {
  JsonScanner scanner(line);
  LEAKDET_RETURN_IF_ERROR(scanner.Expect('{'));
  sim::LabeledPacket lp;
  std::string ip_text;
  bool first = true;
  while (true) {
    if (scanner.TryConsume('}')) break;
    if (!first) {
      // The comma was consumed below; nothing to do.
    }
    first = false;
    LEAKDET_ASSIGN_OR_RETURN(std::string key, scanner.ParseString());
    LEAKDET_RETURN_IF_ERROR(scanner.Expect(':'));
    if (key == "app") {
      LEAKDET_ASSIGN_OR_RETURN(uint64_t v, scanner.ParseUint());
      lp.packet.app_id = static_cast<uint32_t>(v);
    } else if (key == "host") {
      LEAKDET_ASSIGN_OR_RETURN(lp.packet.destination.host,
                               scanner.ParseString());
    } else if (key == "ip") {
      LEAKDET_ASSIGN_OR_RETURN(ip_text, scanner.ParseString());
    } else if (key == "port") {
      LEAKDET_ASSIGN_OR_RETURN(uint64_t v, scanner.ParseUint());
      if (v > 65535) return Status::Corruption("port out of range");
      lp.packet.destination.port = static_cast<uint16_t>(v);
    } else if (key == "rline") {
      LEAKDET_ASSIGN_OR_RETURN(lp.packet.request_line, scanner.ParseString());
    } else if (key == "cookie") {
      LEAKDET_ASSIGN_OR_RETURN(lp.packet.cookie, scanner.ParseString());
    } else if (key == "body") {
      LEAKDET_ASSIGN_OR_RETURN(lp.packet.body, scanner.ParseString());
    } else if (key == "truth") {
      LEAKDET_RETURN_IF_ERROR(scanner.Expect('['));
      if (!scanner.TryConsume(']')) {
        while (true) {
          LEAKDET_ASSIGN_OR_RETURN(uint64_t v, scanner.ParseUint());
          if (v >= core::kNumSensitiveTypes) {
            return Status::Corruption("bad sensitive type id");
          }
          lp.truth.push_back(static_cast<core::SensitiveType>(v));
          if (scanner.TryConsume(']')) break;
          LEAKDET_RETURN_IF_ERROR(scanner.Expect(','));
        }
      }
    } else {
      return Status::Corruption("unknown key: " + key);
    }
    if (scanner.TryConsume('}')) break;
    LEAKDET_RETURN_IF_ERROR(scanner.Expect(','));
  }
  if (!scanner.AtEnd()) return Status::Corruption("trailing JSON content");
  LEAKDET_ASSIGN_OR_RETURN(lp.packet.destination.ip,
                           net::Ipv4Address::Parse(ip_text));
  return lp;
}

// ---------------------------------------------------------------------------
// CSV primitives (RFC 4180 quoting).
// ---------------------------------------------------------------------------

void AppendCsvField(std::string_view s, std::string* out) {
  bool needs_quotes = s.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) {
    out->append(s);
    return;
  }
  *out += '"';
  for (char c : s) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

/// Splits one CSV record starting at `*pos`; advances past the terminating
/// newline. Handles quoted fields with embedded newlines.
StatusOr<std::vector<std::string>> ReadCsvRecord(std::string_view text,
                                                 size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool done = false;
  while (!done) {
    if (*pos >= text.size()) {
      if (in_quotes) return Status::Corruption("unterminated CSV quote");
      break;
    }
    char c = text[(*pos)++];
    if (in_quotes) {
      if (c == '"') {
        if (*pos < text.size() && text[*pos] == '"') {
          field += '"';
          ++(*pos);
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      switch (c) {
        case '"':
          in_quotes = true;
          break;
        case ',':
          fields.push_back(std::move(field));
          field.clear();
          break;
        case '\r':
          break;  // swallow; expect \n next
        case '\n':
          done = true;
          break;
        default:
          field += c;
      }
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

constexpr std::string_view kCsvHeader =
    "app,host,ip,port,rline,cookie,body,truth";

/// The shared packet fields of a JSON object, without the closing brace so
/// callers can extend the object (the JSONL writer adds the truth array).
void AppendPacketJsonFields(const core::HttpPacket& packet, std::string* out) {
  *out += "{\"app\":" + std::to_string(packet.app_id);
  *out += ",\"host\":";
  AppendJsonString(packet.destination.host, out);
  *out += ",\"ip\":";
  AppendJsonString(packet.destination.ip.ToString(), out);
  *out += ",\"port\":" + std::to_string(packet.destination.port);
  *out += ",\"rline\":";
  AppendJsonString(packet.request_line, out);
  *out += ",\"cookie\":";
  AppendJsonString(packet.cookie, out);
  *out += ",\"body\":";
  AppendJsonString(packet.body, out);
}

}  // namespace

std::string SerializeJsonl(const std::vector<sim::LabeledPacket>& packets) {
  std::string out;
  for (const sim::LabeledPacket& lp : packets) {
    AppendPacketJsonFields(lp.packet, &out);
    out += ",\"truth\":[";
    for (size_t i = 0; i < lp.truth.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(static_cast<int>(lp.truth[i]));
    }
    out += "]}\n";
  }
  return out;
}

void AppendPacketJson(const core::HttpPacket& packet, std::string* out) {
  AppendPacketJsonFields(packet, out);
  *out += '}';
}

std::string SerializePacketJson(const core::HttpPacket& packet) {
  std::string out;
  AppendPacketJson(packet, &out);
  return out;
}

StatusOr<core::HttpPacket> ParsePacketJson(std::string_view line) {
  LEAKDET_ASSIGN_OR_RETURN(sim::LabeledPacket lp,
                           ParseJsonLine(TrimWhitespace(line)));
  return std::move(lp.packet);
}

StatusOr<std::vector<sim::LabeledPacket>> ParseJsonl(std::string_view text) {
  std::vector<sim::LabeledPacket> packets;
  for (std::string_view line : Split(text, '\n')) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    LEAKDET_ASSIGN_OR_RETURN(sim::LabeledPacket lp, ParseJsonLine(trimmed));
    packets.push_back(std::move(lp));
  }
  return packets;
}

std::string SerializeCsv(const std::vector<sim::LabeledPacket>& packets) {
  std::string out(kCsvHeader);
  out += '\n';
  for (const sim::LabeledPacket& lp : packets) {
    out += std::to_string(lp.packet.app_id);
    out += ',';
    AppendCsvField(lp.packet.destination.host, &out);
    out += ',';
    AppendCsvField(lp.packet.destination.ip.ToString(), &out);
    out += ',';
    out += std::to_string(lp.packet.destination.port);
    out += ',';
    AppendCsvField(lp.packet.request_line, &out);
    out += ',';
    AppendCsvField(lp.packet.cookie, &out);
    out += ',';
    AppendCsvField(lp.packet.body, &out);
    out += ',';
    std::string truth;
    for (size_t i = 0; i < lp.truth.size(); ++i) {
      if (i) truth += ';';
      truth += std::to_string(static_cast<int>(lp.truth[i]));
    }
    AppendCsvField(truth, &out);
    out += '\n';
  }
  return out;
}

StatusOr<std::vector<sim::LabeledPacket>> ParseCsv(std::string_view text) {
  size_t pos = 0;
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> header,
                           ReadCsvRecord(text, &pos));
  std::string joined = Join(header, ",");
  if (joined != kCsvHeader) {
    return Status::Corruption("unexpected CSV header: " + joined);
  }
  std::vector<sim::LabeledPacket> packets;
  while (pos < text.size()) {
    // Skip blank trailing lines.
    if (text[pos] == '\n') {
      ++pos;
      continue;
    }
    LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> f,
                             ReadCsvRecord(text, &pos));
    if (f.size() == 1 && f[0].empty()) continue;
    if (f.size() != 8) return Status::Corruption("CSV record needs 8 fields");
    sim::LabeledPacket lp;
    LEAKDET_ASSIGN_OR_RETURN(uint64_t app, leakdet::ParseUint64(f[0]));
    lp.packet.app_id = static_cast<uint32_t>(app);
    lp.packet.destination.host = f[1];
    LEAKDET_ASSIGN_OR_RETURN(lp.packet.destination.ip,
                             net::Ipv4Address::Parse(f[2]));
    LEAKDET_ASSIGN_OR_RETURN(uint64_t port, leakdet::ParseUint64(f[3]));
    if (port > 65535) return Status::Corruption("port out of range");
    lp.packet.destination.port = static_cast<uint16_t>(port);
    lp.packet.request_line = f[4];
    lp.packet.cookie = f[5];
    lp.packet.body = f[6];
    if (!f[7].empty()) {
      for (std::string_view part : Split(f[7], ';')) {
        LEAKDET_ASSIGN_OR_RETURN(uint64_t v, leakdet::ParseUint64(part));
        if (v >= core::kNumSensitiveTypes) {
          return Status::Corruption("bad sensitive type id");
        }
        lp.truth.push_back(static_cast<core::SensitiveType>(v));
      }
    }
    packets.push_back(std::move(lp));
  }
  return packets;
}

std::string SerializeDeviceTokens(
    const std::vector<core::DeviceTokens>& devices) {
  std::string out;
  for (const core::DeviceTokens& d : devices) {
    if (!out.empty()) out += "\n";
    out += "android_id " + d.android_id + "\n";
    out += "imei " + d.imei + "\n";
    out += "imsi " + d.imsi + "\n";
    out += "sim_serial " + d.sim_serial + "\n";
    out += "carrier " + d.carrier + "\n";
  }
  return out;
}

StatusOr<std::vector<core::DeviceTokens>> ParseDeviceTokens(
    std::string_view text) {
  std::vector<core::DeviceTokens> devices;
  core::DeviceTokens current;
  bool any_field = false;
  auto flush = [&devices, &current, &any_field] {
    if (any_field) devices.push_back(current);
    current = core::DeviceTokens();
    any_field = false;
  };
  for (std::string_view line : Split(text, '\n')) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) {
      flush();
      continue;
    }
    size_t sp = trimmed.find(' ');
    if (sp == std::string_view::npos) {
      return Status::Corruption("device token line needs 'key value'");
    }
    std::string_view key = trimmed.substr(0, sp);
    std::string value(TrimWhitespace(trimmed.substr(sp + 1)));
    if (key == "android_id") {
      current.android_id = std::move(value);
    } else if (key == "imei") {
      current.imei = std::move(value);
    } else if (key == "imsi") {
      current.imsi = std::move(value);
    } else if (key == "sim_serial") {
      current.sim_serial = std::move(value);
    } else if (key == "carrier") {
      current.carrier = std::move(value);
    } else {
      return Status::Corruption("unknown device token key: " +
                                std::string(key));
    }
    any_field = true;
  }
  flush();
  return devices;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  auto fail = [&](const std::string& op) {
    Status status =
        Status::IOError(op + " failed: " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("fsync");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IOError("rename failed: " + path + ": " +
                                    std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the directory entry so the rename itself survives a crash.
  size_t slash = path.find_last_of('/');
  std::string parent = slash == std::string::npos ? "." : path.substr(0, slash);
  if (parent.empty()) parent = "/";
  int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in && !in.eof()) return Status::IOError("read failed: " + path);
  return ss.str();
}

}  // namespace leakdet::io
