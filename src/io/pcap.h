#ifndef LEAKDET_IO_PCAP_H_
#define LEAKDET_IO_PCAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/packet.h"
#include "util/statusor.h"

namespace leakdet::io {

/// Classic libpcap capture-file writer/reader for the simulated traffic.
///
/// Each HTTP request is framed as Ethernet / IPv4 / TCP with correct IPv4
/// and TCP checksums, one client->server packet per request (the capture the
/// paper's collection server would record). The capture is lossy by design
/// compared to the JSONL trace: ground-truth labels are *not* representable
/// in pcap and must be re-derived with the PayloadCheck oracle after import.
///
/// Conventions (documented, deterministic):
///  - device (client) address is 10.0.0.2, server address the packet's
///    destination IP;
///  - the TCP source port encodes the app id as 1024 + (app_id % 60000),
///    so imports recover packet->application attribution;
///  - timestamps start at `base_time_sec` and advance 10 ms per packet.
class PcapWriter {
 public:
  explicit PcapWriter(uint32_t base_time_sec = 1325376000)
      : base_time_sec_(base_time_sec) {}

  /// Serializes `packets` into a complete pcap byte string.
  std::string Write(const std::vector<core::HttpPacket>& packets) const;

 private:
  uint32_t base_time_sec_;
};

/// Parses a PcapWriter capture back into HTTP packets. Fails with Corruption
/// on malformed captures (bad magic, truncated records, bad IP/TCP framing,
/// checksum mismatches, or unparseable HTTP payloads).
StatusOr<std::vector<core::HttpPacket>> ReadPcap(std::string_view data);

/// IPv4/TCP ones'-complement checksum over `data` (padded with a zero byte
/// when the length is odd), with `seed` folded in (for pseudo-headers).
/// Exposed for tests.
uint16_t InternetChecksum(std::string_view data, uint32_t seed = 0);

}  // namespace leakdet::io

#endif  // LEAKDET_IO_PCAP_H_
