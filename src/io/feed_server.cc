#include "io/feed_server.h"

#include "http/parser.h"
#include "http/response.h"
#include "http/url.h"
#include "util/strutil.h"

namespace leakdet::io {

FeedServer::~FeedServer() { Stop(); }

Status FeedServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  LEAKDET_ASSIGN_OR_RETURN(listener_, net::TcpListener::Bind(port));
  port_ = listener_.port();
  running_.store(true);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void FeedServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

void FeedServer::Serve() {
  while (running_.load()) {
    StatusOr<net::TcpConnection> connection = listener_.Accept(100);
    if (!connection.ok()) continue;  // timeout or transient error
    Handle(std::move(*connection));
  }
}

void FeedServer::Handle(net::TcpConnection connection) {
  // A slow or stalled client may not hold the serving thread hostage: bound
  // how long the request read can take, then drop the connection.
  (void)connection.SetReadTimeout(read_timeout_ms_);
  // Read until the header terminator (feed requests carry no body).
  std::string raw;
  bool timed_out = false;
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos && raw.size() < 65536) {
    StatusOr<std::string> chunk = connection.ReadSome(4096);
    if (!chunk.ok()) {
      timed_out = true;
      break;
    }
    if (chunk->empty()) break;
    raw += *chunk;
  }
  if (timed_out && raw.empty()) {
    return;  // nothing arrived before the deadline; just drop the connection
  }

  http::HttpResponse response;
  StatusOr<http::HttpRequest> request = http::ParseRequest(raw);
  if (!request.ok()) {
    response.set_status(400, "Bad Request");
    response.set_body("malformed request\n");
  } else {
    std::string path = request->SplitRequestTarget().path;
    if (request->method() != "GET") {
      response.set_status(405, "Method Not Allowed");
    } else if (path == "/feed") {
      auto [version, payload] = provider_();
      response.set_status(200, "OK");
      response.AddHeader("Content-Type", "text/plain");
      response.AddHeader("X-Feed-Version", std::to_string(version));
      response.set_body(std::move(payload));
    } else if (path == "/version") {
      auto [version, payload] = provider_();
      (void)payload;
      response.set_status(200, "OK");
      response.AddHeader("Content-Type", "text/plain");
      response.set_body(std::to_string(version));
    } else {
      response.set_status(404, "Not Found");
      response.set_body("unknown path\n");
    }
  }
  response.AddHeader("Connection", "close");
  (void)connection.WriteAll(response.Serialize());
  requests_served_.fetch_add(1);
}

namespace {

StatusOr<http::HttpResponse> Get(uint16_t port, const std::string& path) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpConnection connection,
                           net::TcpConnectLoopback(port));
  http::HttpRequest request("GET", path);
  request.AddHeader("Host", "127.0.0.1");
  request.AddHeader("Connection", "close");
  LEAKDET_RETURN_IF_ERROR(connection.WriteAll(request.Serialize()));
  connection.ShutdownWrite();
  LEAKDET_ASSIGN_OR_RETURN(std::string raw, connection.ReadUntilClose());
  return http::ParseResponse(raw);
}

}  // namespace

StatusOr<FetchedFeed> FetchFeed(uint16_t port) {
  LEAKDET_ASSIGN_OR_RETURN(http::HttpResponse response, Get(port, "/feed"));
  if (response.status_code() != 200) {
    return Status::NotFound("feed fetch failed: HTTP " +
                            std::to_string(response.status_code()));
  }
  FetchedFeed feed;
  feed.payload = response.body();
  if (auto version = response.FindHeader("X-Feed-Version")) {
    LEAKDET_ASSIGN_OR_RETURN(feed.version, leakdet::ParseUint64(*version));
  }
  return feed;
}

StatusOr<uint64_t> FetchFeedVersion(uint16_t port) {
  LEAKDET_ASSIGN_OR_RETURN(http::HttpResponse response,
                           Get(port, "/version"));
  if (response.status_code() != 200) {
    return Status::NotFound("version fetch failed: HTTP " +
                            std::to_string(response.status_code()));
  }
  return leakdet::ParseUint64(response.body());
}

}  // namespace leakdet::io
