#include "io/feed_server.h"

#include <chrono>

#include "crypto/sha1.h"
#include "http/parser.h"
#include "http/response.h"
#include "http/url.h"
#include "util/strutil.h"

namespace leakdet::io {

FeedServer::~FeedServer() { Stop(); }

Status FeedServer::AddRoute(const std::string& path, RouteHandler handler) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (path.empty() || path[0] != '/' || path == "/feed" || path == "/version") {
    return Status::InvalidArgument("invalid or reserved route path: " + path);
  }
  if (!handler) return Status::InvalidArgument("null route handler");
  routes_[path] = std::move(handler);
  return Status::OK();
}

Status FeedServer::Start(uint16_t port) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpListener listener,
                           net::TcpListener::Bind(port));
  return Start(std::make_unique<net::TcpListener>(std::move(listener)));
}

Status FeedServer::Start(std::unique_ptr<net::Listener> listener) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (!listener || !listener->ok()) {
    return Status::InvalidArgument("listener not open");
  }
  listener_ = std::move(listener);
  port_ = listener_->port();
  running_.store(true);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void FeedServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listener_) listener_->Close();
}

void FeedServer::Serve() {
  while (running_.load()) {
    StatusOr<std::unique_ptr<net::Stream>> stream =
        listener_->AcceptStream(100);
    if (!stream.ok()) continue;  // timeout or transient error
    Handle(std::move(*stream));
  }
}

void FeedServer::Handle(std::unique_ptr<net::Stream> stream) {
  Clock* clock = options_.clock != nullptr ? options_.clock : Clock::Real();
  obs::ScopedTimer request_timer(request_ns_, clock);
  // The budget covers the whole request: a client may not extend it by
  // trickling bytes, because each read is bounded by the *remaining* budget,
  // not a fresh per-read timeout.
  const Clock::TimePoint deadline =
      clock->Now() + std::chrono::milliseconds(options_.request_deadline_ms);
  std::string raw;
  bool failed = false;
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos && raw.size() < 65536) {
    Clock::TimePoint now = clock->Now();
    // A clock that has stepped exactly onto the deadline is expired: the
    // budget is [start, deadline), so `now >= deadline` ends the request.
    if (now >= deadline) {
      failed = true;
      break;
    }
    // Round the remaining budget *up* to whole ms: truncation would turn a
    // sub-millisecond remainder into SetReadTimeout(0) — which means "block
    // forever", the exact opposite of an almost-expired deadline.
    auto remaining_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now)
            .count();
    int remaining_ms = static_cast<int>((remaining_ns + 999999) / 1000000);
    (void)stream->SetReadTimeout(remaining_ms);
    StatusOr<std::string> chunk = stream->ReadSome(4096);
    if (!chunk.ok()) {
      failed = true;  // deadline expired, or the connection died mid-request
      break;
    }
    if (chunk->empty()) break;
    raw += *chunk;
  }
  if (failed) {
    requests_timed_out_.fetch_add(1);
    if (raw.empty()) {
      outcomes_.With("dropped")->Inc();
      return;  // nothing ever arrived; just drop the connection
    }
    outcomes_.With("timeout")->Inc();
    // A partial request that stalled out is not malformed — tell the client
    // it was too slow rather than pretending its syntax was bad.
    http::HttpResponse timeout_response;
    timeout_response.set_status(408, "Request Timeout");
    timeout_response.AddHeader("Connection", "close");
    timeout_response.set_body("request incomplete before deadline\n");
    (void)stream->WriteAll(timeout_response.Serialize());
    return;
  }

  http::HttpResponse response;
  StatusOr<http::HttpRequest> request = http::ParseRequest(raw);
  if (!request.ok()) {
    response.set_status(400, "Bad Request");
    response.set_body("malformed request\n");
    outcomes_.With("bad_request")->Inc();
  } else {
    http::Target target = request->SplitRequestTarget();
    const std::string& path = target.path;
    // Tenant routing: `?tenant=<name>` selects a namespaced feed. Resolved
    // up front so /feed and /version share the lookup (and its 404s).
    bool tenant_requested = false;
    bool tenant_bad = false;
    std::optional<std::pair<uint64_t, std::string>> tenant_feed;
    if (auto params = http::ParseQuery(target.raw_query); params.ok()) {
      for (const http::QueryParam& param : *params) {
        if (param.key != "tenant") continue;
        tenant_requested = true;
        if (tenant_provider_) tenant_feed = tenant_provider_(param.value);
        break;
      }
    } else {
      tenant_bad = true;
    }
    auto resolve = [&]() -> std::pair<uint64_t, std::string> {
      return tenant_requested ? std::move(*tenant_feed) : provider_();
    };
    if (request->method() != "GET") {
      response.set_status(405, "Method Not Allowed");
      outcomes_.With("method_not_allowed")->Inc();
    } else if (tenant_bad) {
      response.set_status(400, "Bad Request");
      response.set_body("malformed query\n");
      outcomes_.With("bad_request")->Inc();
    } else if ((path == "/feed" || path == "/version") && tenant_requested &&
               !tenant_feed.has_value()) {
      // An unknown tenant must fail loudly, never fall through to the
      // default namespace: feeds are a per-tenant trust boundary.
      response.set_status(404, "Not Found");
      response.set_body("unknown tenant\n");
      outcomes_.With("not_found")->Inc();
    } else if (path == "/feed") {
      auto [version, payload] = resolve();
      response.set_status(200, "OK");
      response.AddHeader("Content-Type", "text/plain");
      response.AddHeader("X-Feed-Version", std::to_string(version));
      // End-to-end integrity: a flipped byte anywhere between here and the
      // device must fail the fetch, never silently install wrong signatures.
      response.AddHeader("X-Feed-Digest", crypto::Sha1Hex(payload));
      response.set_body(std::move(payload));
      outcomes_.With("ok")->Inc();
    } else if (path == "/version") {
      auto [version, payload] = resolve();
      (void)payload;
      response.set_status(200, "OK");
      response.AddHeader("Content-Type", "text/plain");
      response.set_body(std::to_string(version));
      outcomes_.With("ok")->Inc();
    } else if (auto route = routes_.find(path); route != routes_.end()) {
      // Extra routes (replication plane): same integrity contract as /feed —
      // every successful payload is digest-protected end to end.
      StatusOr<std::pair<uint64_t, std::string>> served =
          route->second(target.raw_query);
      if (served.ok()) {
        auto& [version, payload] = *served;
        response.set_status(200, "OK");
        response.AddHeader("Content-Type", "text/plain");
        response.AddHeader("X-Feed-Version", std::to_string(version));
        response.AddHeader("X-Feed-Digest", crypto::Sha1Hex(payload));
        response.set_body(std::move(payload));
        outcomes_.With("ok")->Inc();
      } else if (served.status().code() == StatusCode::kNotFound) {
        response.set_status(404, "Not Found");
        response.set_body(served.status().message() + "\n");
        outcomes_.With("not_found")->Inc();
      } else if (served.status().code() == StatusCode::kInvalidArgument) {
        response.set_status(400, "Bad Request");
        response.set_body(served.status().message() + "\n");
        outcomes_.With("bad_request")->Inc();
      } else {
        response.set_status(503, "Service Unavailable");
        response.set_body(served.status().message() + "\n");
        outcomes_.With("unavailable")->Inc();
      }
    } else {
      response.set_status(404, "Not Found");
      response.set_body("unknown path\n");
      outcomes_.With("not_found")->Inc();
    }
  }
  response.AddHeader("Connection", "close");
  (void)stream->WriteAll(response.Serialize());
  requests_served_.fetch_add(1);
}

namespace {

StatusOr<http::HttpResponse> Get(net::Stream* stream,
                                 const std::string& path) {
  http::HttpRequest request("GET", path);
  request.AddHeader("Host", "127.0.0.1");
  request.AddHeader("Connection", "close");
  LEAKDET_RETURN_IF_ERROR(stream->WriteAll(request.Serialize()));
  stream->ShutdownWrite();
  LEAKDET_ASSIGN_OR_RETURN(std::string raw, stream->ReadUntilClose());
  return http::ParseResponse(raw);
}

/// "/feed" or "/feed?tenant=<percent-encoded name>".
std::string TenantPath(const char* base, const std::string& tenant) {
  if (tenant.empty()) return base;
  return std::string(base) + "?tenant=" + http::PercentEncode(tenant);
}

}  // namespace

StatusOr<FetchedFeed> FetchPathFrom(net::Stream* stream,
                                    const std::string& target) {
  LEAKDET_ASSIGN_OR_RETURN(http::HttpResponse response, Get(stream, target));
  if (response.status_code() != 200) {
    return Status::NotFound("fetch of " + target + " failed: HTTP " +
                            std::to_string(response.status_code()));
  }
  FetchedFeed feed;
  feed.payload = response.body();
  if (auto version = response.FindHeader("X-Feed-Version")) {
    LEAKDET_ASSIGN_OR_RETURN(feed.version, leakdet::ParseUint64(*version));
  }
  if (auto digest = response.FindHeader("X-Feed-Digest")) {
    if (*digest != crypto::Sha1Hex(feed.payload)) {
      return Status::Corruption("payload of " + target +
                                " does not match X-Feed-Digest");
    }
  }
  return feed;
}

StatusOr<FetchedFeed> FetchFeedFrom(net::Stream* stream,
                                    const std::string& tenant) {
  return FetchPathFrom(stream, TenantPath("/feed", tenant));
}

StatusOr<uint64_t> FetchFeedVersionFrom(net::Stream* stream,
                                        const std::string& tenant) {
  LEAKDET_ASSIGN_OR_RETURN(http::HttpResponse response,
                           Get(stream, TenantPath("/version", tenant)));
  if (response.status_code() != 200) {
    return Status::NotFound("version fetch failed: HTTP " +
                            std::to_string(response.status_code()));
  }
  return leakdet::ParseUint64(response.body());
}

StatusOr<FetchedFeed> FetchFeed(uint16_t port, const std::string& tenant) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpConnection connection,
                           net::TcpConnectLoopback(port));
  return FetchFeedFrom(&connection, tenant);
}

StatusOr<uint64_t> FetchFeedVersion(uint16_t port,
                                    const std::string& tenant) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpConnection connection,
                           net::TcpConnectLoopback(port));
  return FetchFeedVersionFrom(&connection, tenant);
}

}  // namespace leakdet::io
