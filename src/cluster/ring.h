#ifndef LEAKDET_CLUSTER_RING_H_
#define LEAKDET_CLUSTER_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace leakdet::cluster {

/// Consistent-hash routing of device ids onto cluster nodes. Each node owns
/// `vnodes` points on a 64-bit ring; a device id hashes to a point and is
/// served by the next node point clockwise. The two laws the property tests
/// enforce:
///  - balance: with enough vnodes, each of N nodes owns ~1/N of the id
///    space (within 15% relative error across 8 nodes at the default 256);
///  - minimal disruption: removing one node remaps only the ids that node
///    owned (~1/N of the space) — every other id keeps its assignment, so a
///    node failure never reshuffles the whole fleet's per-device ordering.
///
/// Placement is a pure function of (node id, vnode index), so every process
/// in a cluster computes the identical ring from the membership list alone —
/// no coordination traffic. Not thread-safe; the owner serializes membership
/// changes (lookups are const and may race only against no mutation).
class HashRing {
 public:
  explicit HashRing(size_t vnodes = 256);

  /// Adds a node (no-op if present).
  void AddNode(const std::string& node_id);

  /// Removes a node (no-op if absent).
  void RemoveNode(const std::string& node_id);

  bool Contains(const std::string& node_id) const {
    return nodes_.count(node_id) > 0;
  }

  /// The node serving `device_id`. Requires a non-empty ring.
  const std::string& NodeFor(uint64_t device_id) const;

  /// Member node ids, sorted.
  std::vector<std::string> nodes() const;

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

 private:
  size_t vnodes_;
  /// ring point -> owning node id.
  std::map<uint64_t, std::string> ring_;
  std::set<std::string> nodes_;
};

}  // namespace leakdet::cluster

#endif  // LEAKDET_CLUSTER_RING_H_
