#include "cluster/ring.h"

namespace leakdet::cluster {

namespace {

/// SplitMix64 finalizer — the avalanche stage only, used to spread both
/// vnode placements and device ids uniformly over the ring.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the node id, then avalanched: the string hash alone clusters
/// for ids differing in one trailing character ("node-1" vs "node-2").
uint64_t HashNodeId(const std::string& node_id) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : node_id) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace

HashRing::HashRing(size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::AddNode(const std::string& node_id) {
  if (!nodes_.insert(node_id).second) return;
  const uint64_t base = HashNodeId(node_id);
  for (size_t i = 0; i < vnodes_; ++i) {
    uint64_t point = Mix64(base ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    // A collision between two nodes' points is resolved by first-comer; with
    // 64-bit points it is effectively unreachable, and leaving the existing
    // owner keeps placement independent of insertion order for all other ids.
    ring_.emplace(point, node_id);
  }
}

void HashRing::RemoveNode(const std::string& node_id) {
  if (nodes_.erase(node_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

const std::string& HashRing::NodeFor(uint64_t device_id) const {
  // First vnode point at or clockwise of the device's point; wrap to the
  // ring's first point past the top.
  auto it = ring_.lower_bound(Mix64(device_id));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> HashRing::nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

}  // namespace leakdet::cluster
