#ifndef LEAKDET_CLUSTER_REPLICATION_H_
#define LEAKDET_CLUSTER_REPLICATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/file.h"
#include "store/wal.h"
#include "util/statusor.h"

namespace leakdet::cluster {

/// The replication log's wire payload: a contiguous run of CRC-framed WAL
/// records (store::FrameRecord framing, exactly the on-disk format), starting
/// at the first sequence > `after`. A follower applies it with
/// StoreManager::AppendReplicated, so its log becomes a byte-equivalent
/// mirror of the leader's record stream.
struct WalBatch {
  /// Records included, ascending contiguous sequences.
  std::vector<store::FeedRecord> records;
  /// Sequence of the last included record; == `after` when empty. A follower
  /// refetches from here until it receives an empty batch (batches may be cut
  /// at the size limit).
  uint64_t last_sequence = 0;
};

/// Reads the leader's WAL suffix (sequence > `after_sequence`) from its data
/// directory and frames it for the wire, including at most `max_records`
/// (0 = unlimited). Only cleanly flushed bytes are visible — the leader syncs
/// its store before serving a replication round, so the batch never lags what
/// the leader has acknowledged. `last_included` (optional) receives the final
/// sequence shipped.
StatusOr<std::string> BuildWalBatchPayload(store::Dir* dir,
                                           const std::string& dirpath,
                                           uint64_t after_sequence,
                                           size_t max_records = 0,
                                           uint64_t* last_included = nullptr);

/// Decodes a wire payload back into records. `after_sequence` is the
/// follower's current log position: the first record must carry exactly
/// after_sequence + 1 and every subsequent one must be contiguous.
///
/// This parser faces the network, so every malformed input — torn frame,
/// CRC mismatch, bad payload, sequence gap or rewind — returns Corruption
/// (never crashes; it is a fuzz target). The transport's X-Feed-Digest
/// normally catches damage first; this is the second, independent line.
StatusOr<WalBatch> ParseWalBatch(std::string_view payload,
                                 uint64_t after_sequence);

}  // namespace leakdet::cluster

#endif  // LEAKDET_CLUSTER_REPLICATION_H_
