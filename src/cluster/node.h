#ifndef LEAKDET_CLUSTER_NODE_H_
#define LEAKDET_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/payload_check.h"
#include "core/signature_server.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "io/feed_server.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "store/file.h"
#include "store/store_manager.h"
#include "util/statusor.h"

namespace leakdet::cluster {

struct NodeOptions {
  /// Cluster-unique id ("node-0", ...); also this node's HashRing key.
  std::string node_id;
  /// Filesystem seam and this node's data directory within it. `dir` is not
  /// owned and must outlive the node. Chaos gives each node its own
  /// ScriptedDir so crash faults stay node-local and deterministic.
  store::Dir* dir = nullptr;
  std::string data_dir = "node";
  /// Ground-truth oracle for training (leaders only, but every node carries
  /// it so any node can be promoted). Not owned.
  const core::PayloadCheck* oracle = nullptr;
  core::SignatureServer::Options server;
  /// Gateway/trainer/store tunables. Their registry fields are overridden
  /// with the node's private registry (see ClusterNode::registry());
  /// trainer.store is wired to the node's own StoreManager on promotion.
  gateway::GatewayOptions gateway;
  gateway::TrainerOptions trainer;
  store::StoreOptions store;
  /// Options for the node's replication FeedServer (clock injection).
  io::FeedServerOptions feed;
  /// Per-response record cap on /replog (followers loop until drained).
  size_t replog_batch_limit = 2048;
  /// Chain the gateway's per-verdict output into the leader's trainer
  /// (production behavior: the node trains on what it serves). The chaos
  /// harness turns this off and feeds the trainer an explicit, seeded
  /// training stream instead, so detection traffic cannot perturb the
  /// differential oracle.
  bool train_from_gateway = true;
  /// External per-verdict sink (the chaos runner's delivery ledger, a
  /// production exporter). Runs on gateway worker threads; must be
  /// thread-safe. The node chains it in front of its own training hook.
  gateway::DetectionGateway::PacketSink sink;
};

/// One gateway process of the cluster: a full detection stack (gateway +
/// durable store + replication endpoint) that is always serving, plus the
/// training stack (SignatureServer + TrainerLoop) that exists only while
/// this node is the leader.
///
/// Lifecycle:
///  - Start() opens (or reopens, repairing any torn WAL tail) the data
///    directory, republishes the newest local snapshot's epoch so the node
///    serves *something* before any network round-trip, and starts the
///    detection gateway.
///  - A follower calls SyncWithLeader() each round: it mirrors the leader's
///    WAL suffix into its own log (AppendReplicated keeps the leader's
///    sequences), installs the leader's epoch from /feed, and adopts the
///    leader's newest snapshot once its local log covers it.
///  - Promote() turns a follower into the leader *from its own durable
///    state*: sync, then StoreManager::Recover — newest snapshot restores
///    the serving epoch, the replicated WAL suffix replays through the
///    training path re-running any retrains the dead leader never shipped —
///    then the trainer thread starts. No network required: everything a
///    promotion needs was replicated ahead of time.
///
/// Threading: Start/Promote/StopServing/SyncWithLeader are control-plane
/// calls, externally serialized by the owning Cluster. The gateway's worker
/// threads and the replication server thread run concurrently with them by
/// design; everything they touch is atomic, mutex-guarded, or immutable.
class ClusterNode {
 public:
  enum class Role { kFollower, kLeader };

  using ConnectFn =
      std::function<StatusOr<std::unique_ptr<net::Stream>>()>;

  /// Opens the store, republishes local state, starts the gateway.
  static StatusOr<std::unique_ptr<ClusterNode>> Start(NodeOptions options);

  ~ClusterNode();
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Starts the replication endpoint (GET /version, /feed, /replog?after=N,
  /// /snapshot) on an injected listener (chaos: ScriptedListener) or a
  /// loopback TCP port (deployment).
  Status ServeReplication(std::unique_ptr<net::Listener> listener);
  Status ServeReplication(uint16_t port);
  uint16_t replication_port() const;

  /// Follower -> leader, from local durable state only (see class comment).
  /// Idempotent on an already-leading node.
  Status Promote();

  /// One follower replication round against the current leader. `connect`
  /// opens a fresh stream to the leader's replication endpoint (each HTTP
  /// exchange consumes one connection). Any transport damage surfaces as
  /// Corruption — the X-Feed-Digest plus the WAL batch's own CRC framing —
  /// and leaves the node's state exactly as it was before the damaged step.
  struct SyncResult {
    uint64_t leader_feed_version = 0;
    uint64_t records_applied = 0;
    bool epoch_applied = false;
    bool snapshot_installed = false;
  };
  StatusOr<SyncResult> SyncWithLeader(const ConnectFn& connect);

  /// Drains and stops everything (replication endpoint, gateway workers,
  /// trainer thread), syncing the store on the way down. After this the
  /// node only answers state accessors. Idempotent.
  void StopServing();

  /// Routes one packet into this node's detection gateway.
  bool Submit(uint64_t device_id, core::HttpPacket packet) {
    return gateway_.Submit(device_id, std::move(packet));
  }

  Role role() const { return role_; }
  bool serving() const { return serving_; }
  const std::string& id() const { return options_.node_id; }

  /// Serving feed epoch (0 = none yet). Any thread.
  uint64_t epoch_version() const { return gateway_.current_version(); }

  /// Last sequence in the local WAL. Leader: training thread owns the log,
  /// so other threads must read wal_last_gauge() instead; follower: the
  /// control thread owns it, so this is safe there.
  uint64_t wal_last_sequence() const { return store_->last_sequence(); }

  /// Atomic mirror of wal_last_sequence (store.wal_last_sequence gauge),
  /// refreshed on every append — safe from any thread even on a leader.
  uint64_t wal_last_gauge() const { return wal_last_gauge_->Value(); }

  /// Highest durably acknowledged sequence. Any thread.
  uint64_t durable_sequence() const { return store_->durable_sequence(); }

  gateway::DetectionGateway& gateway() { return gateway_; }
  store::StoreManager& store() { return *store_; }
  core::SignatureServer* server() { return server_.get(); }
  gateway::TrainerLoop* trainer() { return trainer_.get(); }

  /// The node's private metrics registry (store.* / gateway.* / trainer.* of
  /// this node only — nodes must not share one, the names would collide).
  obs::Registry* registry() { return &registry_; }

 private:
  explicit ClusterNode(NodeOptions options);

  Status OpenAndServeLocal();
  Status StartReplicationServer(std::unique_ptr<net::Listener> listener);

  NodeOptions options_;
  obs::Registry registry_;
  std::unique_ptr<store::StoreManager> store_;
  gateway::DetectionGateway gateway_;
  std::unique_ptr<core::SignatureServer> server_;
  std::unique_ptr<gateway::TrainerLoop> trainer_;
  std::unique_ptr<io::FeedServer> replication_server_;
  /// The training half of the gateway sink. Workers read it with acquire
  /// loads; promotion stores it only after the trainer is running, so a
  /// packet either misses the trainer (pre-promotion) or reaches a live one.
  std::atomic<gateway::TrainerLoop*> training_sink_{nullptr};
  Role role_ = Role::kFollower;
  bool serving_ = false;
  /// last_sequence covered by the newest snapshot this node has (written or
  /// installed); used to skip re-installing a snapshot it already has.
  uint64_t snapshot_covered_ = 0;
  obs::Gauge* wal_last_gauge_ = nullptr;
};

}  // namespace leakdet::cluster

#endif  // LEAKDET_CLUSTER_NODE_H_
