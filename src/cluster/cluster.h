#ifndef LEAKDET_CLUSTER_CLUSTER_H_
#define LEAKDET_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/ring.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "util/statusor.h"

namespace leakdet::cluster {

struct ClusterOptions {
  /// Consecutive failed leader heartbeats before a follower considers the
  /// leader lost (MaybeFailover's trigger).
  size_t heartbeat_miss_threshold = 3;
  /// Replication rounds retried per follower when transport damage is
  /// detected (X-Feed-Digest / WAL-frame CRC -> Corruption). Retries are
  /// deterministic under a scripted transport: the fault schedule advances.
  size_t max_sync_retries = 8;
  /// Virtual nodes per member on the routing ring.
  size_t ring_vnodes = 256;
  /// Destination of the cluster.* metric families (membership, per-node
  /// epoch/lag/skew, replication and failover counters). nullptr =
  /// obs::Registry::Default(). Node-local metrics live in each node's
  /// private registry, never here.
  obs::Registry* registry = nullptr;
};

/// Control plane over N ClusterNodes: consistent-hash device routing, the
/// replication schedule, leader-loss detection, and deterministic failover.
///
/// The cluster is deliberately *driven*, not self-driving: Tick-style calls
/// (SyncFollowers / PollHeartbeats / MaybeFailover) advance it one step and
/// return what happened, so the chaos harness can interleave faults at exact
/// points and a deployment (tools/leakdet_cluster) can run them on a timer
/// thread. All control-plane calls are serialized by an internal mutex;
/// Submit() only touches the ring under the same mutex and the chosen node's
/// lock-free gateway path.
///
/// Failover contract (what cluster_chaos proves): after KillLeader() +
/// MaybeFailover(), the promoted node rebuilt the training state from its
/// *local* replicated WAL — snapshot restore plus suffix replay — and its
/// serving feed is byte-identical to what a never-crashed single-node
/// trainer over the same training stream would serve, once epochs converge.
class Cluster {
 public:
  /// Builds one node (called at cluster start and again on every restart —
  /// a restart constructs a fresh node over the same data directory).
  using NodeFactory =
      std::function<StatusOr<std::unique_ptr<ClusterNode>>()>;
  /// Opens a fresh stream to the node's replication endpoint.
  using ConnectFn = ClusterNode::ConnectFn;

  explicit Cluster(ClusterOptions options = {});

  /// Registers a member slot. Call for every node before Start(); the slot
  /// index is the order of registration.
  void AddNode(std::string node_id, NodeFactory factory, ConnectFn connect);

  /// Constructs every node and promotes `leader_index`.
  Status Start(size_t leader_index);

  /// Stops every live node (graceful).
  void Shutdown();

  /// Routes one packet to the live node owning `device_id`. False when the
  /// ring is empty or the owner shed it.
  bool Submit(uint64_t device_id, core::HttpPacket packet);

  /// The node id `device_id` routes to ("" when the ring is empty).
  std::string RouteFor(uint64_t device_id);

  struct SyncStats {
    size_t followers_synced = 0;
    size_t followers_skipped = 0;   ///< dead or partitioned from the leader
    size_t failures = 0;            ///< rounds that errored past all retries
    uint64_t corruptions_detected = 0;
    uint64_t records_replicated = 0;
    uint64_t epochs_applied = 0;
    uint64_t snapshots_installed = 0;
  };

  /// One replication round: every live, reachable follower syncs from the
  /// current leader (retrying through detected corruption), then the
  /// cluster.* lag/skew gauges refresh.
  SyncStats SyncFollowers();

  /// One heartbeat round: every live follower polls the leader's /version
  /// through its own reachability. Returns how many followers have now
  /// missed >= the threshold.
  size_t PollHeartbeats();

  /// Promotes the best live follower iff the leader is gone (killed) or
  /// every live follower has reached the miss threshold. Election is
  /// deterministic: max (serving epoch, WAL last sequence), ties to the
  /// lowest slot index. Returns true when a promotion happened.
  bool MaybeFailover();

  /// Hard-stops the leader and removes it from the ring (its devices remap
  /// to survivors). The slot can later RestartNode() as a follower.
  Status KillLeader();

  /// Hard-stops one node (leader or follower).
  Status KillNode(size_t index);

  /// Reconstructs a previously killed slot over its surviving data
  /// directory; it rejoins the ring as a follower serving its local
  /// snapshot epoch until the next SyncFollowers() catches it up.
  Status RestartNode(size_t index);

  /// Chaos seam: severs (or heals) the link between two slots. Partitions
  /// are symmetric and affect heartbeats and replication, never the test
  /// driver's Submit() routing.
  void SetReachable(size_t a, size_t b, bool reachable);

  size_t num_nodes() const { return slots_.size(); }
  /// Live-node count.
  size_t num_alive();
  size_t leader_index();
  ClusterNode* node(size_t index);
  bool alive(size_t index);

  /// Gateway counter totals across every node *including* killed-and-
  /// restarted incarnations (the conservation ledger survives failovers).
  struct Totals {
    uint64_t submitted = 0;
    uint64_t accepted = 0;  ///< submitted - dropped
    uint64_t dropped = 0;
    uint64_t processed = 0;
  };
  Totals GatewayTotals();

  uint64_t failovers() const { return failovers_->Value(); }

  /// Registers the "cluster" /statusz section: one line per member with
  /// role, liveness, serving epoch, WAL position, and heartbeat misses.
  void AddStatusTo(obs::AdminServer* admin);

  /// The /statusz section body (exposed for assertions).
  std::string StatusReport();

 private:
  struct Slot {
    std::string id;
    NodeFactory factory;
    ConnectFn connect;
    std::unique_ptr<ClusterNode> node;
    bool alive = false;
    size_t heartbeat_misses = 0;
    /// Counters of dead incarnations, absorbed at kill time.
    Totals retired;
  };

  bool Reachable(size_t a, size_t b) const;
  ConnectFn CheckedConnect(size_t from, size_t to);
  void RefreshMetrics();
  Status KillNodeLocked(size_t index);
  std::string StatusReportLocked();

  ClusterOptions options_;
  obs::Registry* registry_;
  std::mutex mu_;
  std::vector<Slot> slots_;
  HashRing ring_;
  size_t leader_index_ = 0;
  bool started_ = false;
  /// reachable_[a][b]: link between slots a and b is up (symmetric).
  std::vector<std::vector<bool>> reachable_;

  obs::GaugeFamily epoch_gauge_;
  obs::GaugeFamily wal_last_gauge_;
  obs::GaugeFamily replication_lag_;
  obs::GaugeFamily epoch_skew_;
  obs::GaugeFamily is_leader_;
  obs::GaugeFamily alive_gauge_;
  obs::CounterFamily heartbeat_miss_counter_;
  obs::CounterFamily sync_rounds_;
  obs::CounterFamily sync_corruptions_;
  obs::CounterFamily records_replicated_;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* elections_ = nullptr;
  obs::Counter* node_restarts_ = nullptr;
  obs::Gauge* membership_gauge_ = nullptr;
};

}  // namespace leakdet::cluster

#endif  // LEAKDET_CLUSTER_CLUSTER_H_
