#include "cluster/cluster.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "io/feed_server.h"

namespace leakdet::cluster {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::Registry::Default()),
      ring_(options.ring_vnodes),
      epoch_gauge_(registry_, "cluster.epoch_version", "node"),
      wal_last_gauge_(registry_, "cluster.wal_last_sequence", "node"),
      replication_lag_(registry_, "cluster.replication_lag", "node"),
      epoch_skew_(registry_, "cluster.epoch_skew", "node"),
      is_leader_(registry_, "cluster.is_leader", "node"),
      alive_gauge_(registry_, "cluster.alive", "node"),
      heartbeat_miss_counter_(registry_, "cluster.heartbeat_misses", "node"),
      sync_rounds_(registry_, "cluster.sync_rounds", "node"),
      sync_corruptions_(registry_, "cluster.sync_corruptions", "node"),
      records_replicated_(registry_, "cluster.records_replicated", "node") {
  failovers_ = registry_->GetCounter("cluster.failovers");
  elections_ = registry_->GetCounter("cluster.elections");
  node_restarts_ = registry_->GetCounter("cluster.node_restarts");
  membership_gauge_ = registry_->GetGauge("cluster.members_alive");
}

void Cluster::AddNode(std::string node_id, NodeFactory factory,
                      ConnectFn connect) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot slot;
  slot.id = std::move(node_id);
  slot.factory = std::move(factory);
  slot.connect = std::move(connect);
  slots_.push_back(std::move(slot));
}

Status Cluster::Start(size_t leader_index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("cluster already started");
  if (slots_.empty()) return Status::FailedPrecondition("no nodes registered");
  if (leader_index >= slots_.size()) {
    return Status::InvalidArgument("leader index out of range");
  }
  reachable_.assign(slots_.size(),
                    std::vector<bool>(slots_.size(), true));
  for (Slot& slot : slots_) {
    LEAKDET_ASSIGN_OR_RETURN(slot.node, slot.factory());
    slot.alive = true;
    ring_.AddNode(slot.id);
  }
  LEAKDET_RETURN_IF_ERROR(slots_[leader_index].node->Promote());
  leader_index_ = leader_index;
  started_ = true;
  RefreshMetrics();
  return Status::OK();
}

void Cluster::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.alive && slot.node != nullptr) slot.node->StopServing();
  }
}

bool Cluster::Submit(uint64_t device_id, core::HttpPacket packet) {
  // Held across the node's Submit: routing and membership must not change
  // under the call (a concurrent kill would destroy the node). The gateway's
  // enqueue path is lock-free and its workers drain independently, so this
  // serializes only the *driver*, not detection.
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return false;
  const std::string& id = ring_.NodeFor(device_id);
  for (Slot& slot : slots_) {
    if (slot.id == id) {
      if (!slot.alive || slot.node == nullptr) return false;
      return slot.node->Submit(device_id, std::move(packet));
    }
  }
  return false;
}

std::string Cluster::RouteFor(uint64_t device_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::string();
  return ring_.NodeFor(device_id);
}

bool Cluster::Reachable(size_t a, size_t b) const {
  if (a == b) return true;
  return reachable_[a][b];
}

Cluster::ConnectFn Cluster::CheckedConnect(size_t from, size_t to) {
  // Capture the raw connect by value; reachability is re-evaluated per
  // attempt so a partition healed between retries is immediately usable.
  ConnectFn raw = slots_[to].connect;
  return [this, from, to, raw]() -> StatusOr<std::unique_ptr<net::Stream>> {
    if (!Reachable(from, to)) {
      return Status::IOError("partitioned: " + slots_[from].id + " cannot reach " +
                             slots_[to].id);
    }
    if (!slots_[to].alive) {
      return Status::IOError(slots_[to].id + " is down");
    }
    return raw();
  };
}

Cluster::SyncStats Cluster::SyncFollowers() {
  std::lock_guard<std::mutex> lock(mu_);
  SyncStats stats;
  if (!slots_[leader_index_].alive) {
    stats.followers_skipped = slots_.size() - 1;
    return stats;
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i == leader_index_) continue;
    Slot& slot = slots_[i];
    if (!slot.alive || !Reachable(i, leader_index_)) {
      ++stats.followers_skipped;
      continue;
    }
    ConnectFn connect = CheckedConnect(i, leader_index_);
    bool synced = false;
    // A round interrupted by transport damage (Corruption) or a dropped
    // connection left the follower's state intact up to the damaged step;
    // retrying simply advances the fault schedule until a clean round lands.
    for (size_t attempt = 0; attempt <= options_.max_sync_retries; ++attempt) {
      StatusOr<ClusterNode::SyncResult> result =
          slot.node->SyncWithLeader(connect);
      sync_rounds_.With(slot.id)->Inc();
      if (result.ok()) {
        stats.records_replicated += result->records_applied;
        records_replicated_.With(slot.id)->Inc(result->records_applied);
        if (result->epoch_applied) ++stats.epochs_applied;
        if (result->snapshot_installed) ++stats.snapshots_installed;
        synced = true;
        break;
      }
      if (result.status().code() == StatusCode::kCorruption) {
        ++stats.corruptions_detected;
        sync_corruptions_.With(slot.id)->Inc();
      }
    }
    if (synced) {
      ++stats.followers_synced;
      slot.heartbeat_misses = 0;  // a full round is better than a heartbeat
    } else {
      ++stats.failures;
    }
  }
  RefreshMetrics();
  return stats;
}

size_t Cluster::PollHeartbeats() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t at_threshold = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i == leader_index_) continue;
    Slot& slot = slots_[i];
    if (!slot.alive) continue;
    bool beat = false;
    if (slots_[leader_index_].alive && Reachable(i, leader_index_)) {
      ConnectFn connect = CheckedConnect(i, leader_index_);
      StatusOr<std::unique_ptr<net::Stream>> conn = connect();
      if (conn.ok()) {
        beat = io::FetchFeedVersionFrom(conn->get()).ok();
      }
    }
    if (beat) {
      slot.heartbeat_misses = 0;
    } else {
      ++slot.heartbeat_misses;
      heartbeat_miss_counter_.With(slot.id)->Inc();
    }
    if (slot.heartbeat_misses >= options_.heartbeat_miss_threshold) {
      ++at_threshold;
    }
  }
  return at_threshold;
}

bool Cluster::MaybeFailover() {
  std::lock_guard<std::mutex> lock(mu_);
  bool leader_lost = !slots_[leader_index_].alive;
  if (!leader_lost) {
    // A reachable leader is never deposed: failover requires *every* live
    // follower to have hit the miss threshold (a single partitioned
    // follower must not split the brain).
    size_t live_followers = 0;
    size_t starved = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (i == leader_index_ || !slots_[i].alive) continue;
      ++live_followers;
      if (slots_[i].heartbeat_misses >= options_.heartbeat_miss_threshold) {
        ++starved;
      }
    }
    leader_lost = live_followers > 0 && starved == live_followers;
  }
  if (!leader_lost) return false;

  // Deterministic election: the most caught-up live follower wins — highest
  // serving epoch, then longest replicated WAL, then lowest slot index.
  // (Follower stores are written only by this control thread, so reading
  // their sequences here is race-free.)
  size_t winner = slots_.size();
  std::tuple<uint64_t, uint64_t> best{0, 0};
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i == leader_index_ || !slots_[i].alive) continue;
    std::tuple<uint64_t, uint64_t> score{
        slots_[i].node->epoch_version(),
        slots_[i].node->wal_last_sequence()};
    if (winner == slots_.size() || score > best) {
      winner = i;
      best = score;
    }
  }
  if (winner == slots_.size()) return false;  // nobody left to promote

  elections_->Inc();
  Status promoted = slots_[winner].node->Promote();
  if (!promoted.ok()) return false;
  leader_index_ = winner;
  for (Slot& slot : slots_) slot.heartbeat_misses = 0;
  failovers_->Inc();
  RefreshMetrics();
  return true;
}

Status Cluster::KillNodeLocked(size_t index) {
  if (index >= slots_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  Slot& slot = slots_[index];
  if (!slot.alive) return Status::FailedPrecondition(slot.id + " already down");
  // Drain first, then read the incarnation's final counters into the
  // retired ledger — conservation accounting must survive the node object.
  slot.node->StopServing();
  slot.retired.submitted += slot.node->gateway().submitted();
  slot.retired.dropped += slot.node->gateway().dropped();
  slot.retired.processed += slot.node->gateway().processed();
  slot.retired.accepted =
      slot.retired.submitted - slot.retired.dropped;
  slot.node.reset();
  slot.alive = false;
  slot.heartbeat_misses = 0;
  ring_.RemoveNode(slot.id);
  RefreshMetrics();
  return Status::OK();
}

Status Cluster::KillLeader() {
  std::lock_guard<std::mutex> lock(mu_);
  return KillNodeLocked(leader_index_);
}

Status Cluster::KillNode(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  return KillNodeLocked(index);
}

Status Cluster::RestartNode(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  Slot& slot = slots_[index];
  if (slot.alive) return Status::FailedPrecondition(slot.id + " is running");
  LEAKDET_ASSIGN_OR_RETURN(slot.node, slot.factory());
  slot.alive = true;
  slot.heartbeat_misses = 0;
  ring_.AddNode(slot.id);
  node_restarts_->Inc();
  RefreshMetrics();
  return Status::OK();
}

void Cluster::SetReachable(size_t a, size_t b, bool reachable) {
  std::lock_guard<std::mutex> lock(mu_);
  if (a >= slots_.size() || b >= slots_.size() || a == b) return;
  reachable_[a][b] = reachable;
  reachable_[b][a] = reachable;
}

size_t Cluster::num_alive() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t alive = 0;
  for (const Slot& slot : slots_) {
    if (slot.alive) ++alive;
  }
  return alive;
}

size_t Cluster::leader_index() {
  std::lock_guard<std::mutex> lock(mu_);
  return leader_index_;
}

ClusterNode* Cluster::node(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) return nullptr;
  return slots_[index].node.get();
}

bool Cluster::alive(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  return index < slots_.size() && slots_[index].alive;
}

Cluster::Totals Cluster::GatewayTotals() {
  std::lock_guard<std::mutex> lock(mu_);
  Totals totals;
  for (const Slot& slot : slots_) {
    totals.submitted += slot.retired.submitted;
    totals.dropped += slot.retired.dropped;
    totals.processed += slot.retired.processed;
    if (slot.alive && slot.node != nullptr) {
      totals.submitted += slot.node->gateway().submitted();
      totals.dropped += slot.node->gateway().dropped();
      totals.processed += slot.node->gateway().processed();
    }
  }
  totals.accepted = totals.submitted - totals.dropped;
  return totals;
}

void Cluster::RefreshMetrics() {
  const bool leader_alive = slots_[leader_index_].alive;
  const uint64_t leader_epoch =
      leader_alive ? slots_[leader_index_].node->epoch_version() : 0;
  const uint64_t leader_wal =
      leader_alive ? slots_[leader_index_].node->wal_last_gauge() : 0;
  size_t alive = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    const bool is_leader = i == leader_index_ && slot.alive;
    alive_gauge_.With(slot.id)->Set(slot.alive ? 1 : 0);
    is_leader_.With(slot.id)->Set(is_leader ? 1 : 0);
    if (!slot.alive) {
      epoch_gauge_.With(slot.id)->Set(0);
      wal_last_gauge_.With(slot.id)->Set(0);
      replication_lag_.With(slot.id)->Set(0);
      epoch_skew_.With(slot.id)->Set(0);
      continue;
    }
    ++alive;
    const uint64_t epoch = slot.node->epoch_version();
    const uint64_t wal = slot.node->wal_last_gauge();
    epoch_gauge_.With(slot.id)->Set(static_cast<int64_t>(epoch));
    wal_last_gauge_.With(slot.id)->Set(static_cast<int64_t>(wal));
    if (leader_alive && !is_leader) {
      replication_lag_.With(slot.id)->Set(
          leader_wal > wal ? static_cast<int64_t>(leader_wal - wal) : 0);
      epoch_skew_.With(slot.id)->Set(
          leader_epoch > epoch ? static_cast<int64_t>(leader_epoch - epoch)
                               : 0);
    } else {
      replication_lag_.With(slot.id)->Set(0);
      epoch_skew_.With(slot.id)->Set(0);
    }
  }
  membership_gauge_->Set(static_cast<int64_t>(alive));
}

std::string Cluster::StatusReportLocked() {
  std::string out;
  size_t alive = 0;
  for (const Slot& slot : slots_) {
    if (slot.alive) ++alive;
  }
  out += "members: " + std::to_string(slots_.size()) + "\n";
  out += "alive: " + std::to_string(alive) + "\n";
  out += "leader: " +
         (slots_[leader_index_].alive ? slots_[leader_index_].id
                                      : std::string("(none)")) +
         "\n";
  const bool leader_alive = slots_[leader_index_].alive;
  const uint64_t leader_epoch =
      leader_alive ? slots_[leader_index_].node->epoch_version() : 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    out += slot.id + ": ";
    if (!slot.alive) {
      out += "role=down\n";
      continue;
    }
    const uint64_t epoch = slot.node->epoch_version();
    out += "role=";
    out += (i == leader_index_ ? "leader" : "follower");
    out += " epoch=" + std::to_string(epoch);
    out += " wal_last=" + std::to_string(slot.node->wal_last_gauge());
    out += " durable=" + std::to_string(slot.node->durable_sequence());
    out += " skew=" +
           std::to_string(leader_epoch > epoch ? leader_epoch - epoch : 0);
    out += " misses=" + std::to_string(slot.heartbeat_misses);
    out += "\n";
  }
  return out;
}

std::string Cluster::StatusReport() {
  std::lock_guard<std::mutex> lock(mu_);
  return StatusReportLocked();
}

void Cluster::AddStatusTo(obs::AdminServer* admin) {
  admin->AddStatusSection("cluster", [this] { return StatusReport(); });
}

}  // namespace leakdet::cluster
