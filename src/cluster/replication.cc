#include "cluster/replication.h"

namespace leakdet::cluster {

StatusOr<std::string> BuildWalBatchPayload(store::Dir* dir,
                                           const std::string& dirpath,
                                           uint64_t after_sequence,
                                           size_t max_records,
                                           uint64_t* last_included) {
  std::string payload;
  uint64_t last = after_sequence;
  size_t shipped = 0;
  auto collect = [&](const store::FeedRecord& record) -> Status {
    if (max_records != 0 && shipped >= max_records) return Status::OK();
    payload += store::FrameRecord(record);
    last = record.sequence;
    ++shipped;
    return Status::OK();
  };
  // repair=false: serving a read must never rewrite the leader's log (the
  // writer owns tail repair). A torn tail here is just the not-yet-flushed
  // edge of the live segment and is skipped.
  LEAKDET_RETURN_IF_ERROR(
      ReplayWal(dir, dirpath, after_sequence, collect, /*repair=*/false)
          .status());
  if (last_included != nullptr) *last_included = last;
  return payload;
}

StatusOr<WalBatch> ParseWalBatch(std::string_view payload,
                                 uint64_t after_sequence) {
  WalBatch batch;
  batch.last_sequence = after_sequence;
  store::RecordCursor cursor(payload);
  while (true) {
    StatusOr<store::FeedRecord> record = cursor.Next();
    if (!record.ok()) {
      if (record.status().code() == StatusCode::kNotFound) break;  // clean end
      // Torn frame (OutOfRange) and CRC/payload damage both mean the wire
      // bytes are not a faithful copy of the leader's log: one verdict, so
      // the caller's retry logic has a single corruption path to handle.
      return Status::Corruption("wal batch damaged at offset " +
                                std::to_string(cursor.offset()) + ": " +
                                record.status().message());
    }
    if (record->sequence != batch.last_sequence + 1) {
      return Status::Corruption(
          "wal batch sequence " + std::to_string(record->sequence) +
          " does not continue " + std::to_string(batch.last_sequence));
    }
    batch.last_sequence = record->sequence;
    batch.records.push_back(std::move(*record));
  }
  return batch;
}

}  // namespace leakdet::cluster
