#include "cluster/node.h"

#include <vector>

#include "cluster/replication.h"
#include "http/url.h"
#include "match/signature.h"
#include "store/snapshot.h"
#include "util/strutil.h"

namespace leakdet::cluster {

ClusterNode::ClusterNode(NodeOptions options)
    : options_(std::move(options)), gateway_([this] {
        gateway::GatewayOptions g = options_.gateway;
        g.registry = &registry_;
        return g;
      }()) {}

ClusterNode::~ClusterNode() { StopServing(); }

StatusOr<std::unique_ptr<ClusterNode>> ClusterNode::Start(NodeOptions options) {
  if (options.dir == nullptr) {
    return Status::InvalidArgument("NodeOptions.dir is required");
  }
  if (options.oracle == nullptr) {
    return Status::InvalidArgument("NodeOptions.oracle is required");
  }
  if (options.node_id.empty()) {
    return Status::InvalidArgument("NodeOptions.node_id is required");
  }
  std::unique_ptr<ClusterNode> node(new ClusterNode(std::move(options)));
  LEAKDET_RETURN_IF_ERROR(node->OpenAndServeLocal());
  return node;
}

Status ClusterNode::OpenAndServeLocal() {
  store::StoreOptions store_options = options_.store;
  store_options.registry = &registry_;
  LEAKDET_ASSIGN_OR_RETURN(
      store_, store::StoreManager::Open(options_.dir, options_.data_dir,
                                        store_options));
  wal_last_gauge_ = registry_.GetGauge("store.wal_last_sequence");

  // Serve-before-sync: a (re)started node publishes the newest epoch its own
  // disk remembers before talking to anyone, so a follower that rejoins a
  // partitioned cluster still detects with its last known feed.
  std::string snapshot_name;
  StatusOr<store::SnapshotContents> snapshot = store::LoadNewestSnapshot(
      options_.dir, options_.data_dir, &snapshot_name);
  if (snapshot.ok()) {
    snapshot_covered_ = snapshot->last_sequence;
    if (snapshot->feed_version > 0) {
      LEAKDET_ASSIGN_OR_RETURN(
          match::SignatureSet set,
          match::SignatureSet::Deserialize(snapshot->signatures));
      gateway_.Publish(std::make_shared<match::CompiledSignatureSet>(
          std::move(set), snapshot->feed_version));
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  gateway_.set_sink([this](const core::HttpPacket& packet,
                           const gateway::Verdict& verdict) {
    if (options_.sink) options_.sink(packet, verdict);
    if (!options_.train_from_gateway) return;
    gateway::TrainerLoop* trainer =
        training_sink_.load(std::memory_order_acquire);
    if (trainer != nullptr) trainer->Offer(packet, verdict);
  });
  LEAKDET_RETURN_IF_ERROR(gateway_.Start());
  serving_ = true;
  return Status::OK();
}

Status ClusterNode::StartReplicationServer(
    std::unique_ptr<net::Listener> listener) {
  if (replication_server_ != nullptr) {
    return Status::FailedPrecondition("replication endpoint already serving");
  }
  io::FeedServer::FeedProvider provider =
      [this]() -> std::pair<uint64_t, std::string> {
    std::shared_ptr<const match::CompiledSignatureSet> set =
        gateway_.current_set();
    if (set == nullptr) return {0, std::string()};
    return {set->version(), set->set().Serialize()};
  };
  auto server = std::make_unique<io::FeedServer>(provider, options_.feed);

  LEAKDET_RETURN_IF_ERROR(server->AddRoute(
      "/replog",
      [this](const std::string& raw_query)
          -> StatusOr<std::pair<uint64_t, std::string>> {
        LEAKDET_ASSIGN_OR_RETURN(std::vector<http::QueryParam> params,
                                 http::ParseQuery(raw_query));
        uint64_t after = 0;
        bool have_after = false;
        for (const http::QueryParam& param : params) {
          if (param.key != "after") continue;
          LEAKDET_ASSIGN_OR_RETURN(after, leakdet::ParseUint64(param.value));
          have_after = true;
        }
        if (!have_after) {
          return Status::InvalidArgument("missing after=<sequence>");
        }
        uint64_t last = after;
        LEAKDET_ASSIGN_OR_RETURN(
            std::string payload,
            BuildWalBatchPayload(options_.dir, options_.data_dir, after,
                                 options_.replog_batch_limit, &last));
        return std::make_pair(last, std::move(payload));
      }));

  LEAKDET_RETURN_IF_ERROR(server->AddRoute(
      "/snapshot",
      [this](const std::string&)
          -> StatusOr<std::pair<uint64_t, std::string>> {
        std::string name;
        LEAKDET_ASSIGN_OR_RETURN(std::string raw,
                                 store::ReadNewestSnapshotRaw(
                                     options_.dir, options_.data_dir, &name));
        uint64_t version = 0;
        uint64_t sequence = 0;
        store::ParseSnapshotFileName(name, &version, &sequence);
        return std::make_pair(version, std::move(raw));
      }));

  LEAKDET_RETURN_IF_ERROR(server->Start(std::move(listener)));
  replication_server_ = std::move(server);
  return Status::OK();
}

Status ClusterNode::ServeReplication(std::unique_ptr<net::Listener> listener) {
  return StartReplicationServer(std::move(listener));
}

Status ClusterNode::ServeReplication(uint16_t port) {
  if (replication_server_ != nullptr) {
    return Status::FailedPrecondition("replication endpoint already serving");
  }
  LEAKDET_ASSIGN_OR_RETURN(net::TcpListener listener,
                           net::TcpListener::Bind(port));
  return StartReplicationServer(
      std::make_unique<net::TcpListener>(std::move(listener)));
}

uint16_t ClusterNode::replication_port() const {
  return replication_server_ != nullptr ? replication_server_->port() : 0;
}

Status ClusterNode::Promote() {
  if (role_ == Role::kLeader) return Status::OK();
  if (!serving_) return Status::FailedPrecondition("node is stopped");
  server_ =
      std::make_unique<core::SignatureServer>(options_.oracle, options_.server);
  gateway::TrainerOptions trainer_options = options_.trainer;
  trainer_options.store = store_.get();
  // The trainer's constructor installs itself as the server's feed observer,
  // so the Recover() below republishes the snapshot epoch and re-publishes
  // any retrains the WAL-suffix replay re-runs — all before the training
  // thread exists (the observer fires synchronously on this thread).
  trainer_ = std::make_unique<gateway::TrainerLoop>(server_.get(), &gateway_,
                                                    trainer_options);
  LEAKDET_RETURN_IF_ERROR(store_->Sync());
  LEAKDET_ASSIGN_OR_RETURN(store::StoreManager::RecoveryStats recovery,
                           store_->Recover(server_.get()));
  if (recovery.snapshot_loaded &&
      recovery.snapshot_sequence > snapshot_covered_) {
    snapshot_covered_ = recovery.snapshot_sequence;
  }
  LEAKDET_RETURN_IF_ERROR(trainer_->Start());
  training_sink_.store(trainer_.get(), std::memory_order_release);
  role_ = Role::kLeader;
  return Status::OK();
}

StatusOr<ClusterNode::SyncResult> ClusterNode::SyncWithLeader(
    const ConnectFn& connect) {
  if (role_ == Role::kLeader) {
    return Status::FailedPrecondition("a leader does not sync from itself");
  }
  if (!serving_) return Status::FailedPrecondition("node is stopped");
  SyncResult result;
  {
    LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<net::Stream> conn, connect());
    LEAKDET_ASSIGN_OR_RETURN(result.leader_feed_version,
                             io::FetchFeedVersionFrom(conn.get()));
  }

  // Mirror the leader's WAL suffix. Batches are size-capped, so loop until
  // one comes back empty; every applied record keeps the leader's sequence
  // (AppendReplicated rejects anything non-contiguous).
  while (true) {
    const uint64_t after = store_->last_sequence();
    LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<net::Stream> conn, connect());
    LEAKDET_ASSIGN_OR_RETURN(
        io::FetchedFeed fetched,
        io::FetchPathFrom(conn.get(),
                          "/replog?after=" + std::to_string(after)));
    LEAKDET_ASSIGN_OR_RETURN(WalBatch batch,
                             ParseWalBatch(fetched.payload, after));
    if (batch.records.empty()) break;
    for (store::FeedRecord& record : batch.records) {
      LEAKDET_RETURN_IF_ERROR(
          store_->AppendReplicated(std::move(record)).status());
      ++result.records_applied;
    }
  }

  // Adopt the leader's serving epoch. Publish() rejects non-newer versions,
  // so a replayed or duplicate fetch can never roll this node back.
  if (result.leader_feed_version > gateway_.current_version()) {
    LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<net::Stream> conn, connect());
    LEAKDET_ASSIGN_OR_RETURN(io::FetchedFeed feed,
                             io::FetchFeedFrom(conn.get()));
    if (feed.version > 0) {
      LEAKDET_ASSIGN_OR_RETURN(match::SignatureSet set,
                               match::SignatureSet::Deserialize(feed.payload));
      result.epoch_applied = gateway_.Publish(
          std::make_shared<match::CompiledSignatureSet>(std::move(set),
                                                        feed.version));
    }
  }

  // Adopt the leader's newest snapshot once the local log covers it (an
  // uncovered snapshot would leave a replay gap; skip it — the next round's
  // replog catch-up closes the distance).
  if (result.leader_feed_version > 0) {
    LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<net::Stream> conn, connect());
    StatusOr<io::FetchedFeed> snap =
        io::FetchPathFrom(conn.get(), "/snapshot");
    if (!snap.ok()) {
      if (snap.status().code() != StatusCode::kNotFound) return snap.status();
    } else {
      LEAKDET_ASSIGN_OR_RETURN(store::SnapshotContents contents,
                               store::ParseSnapshot(snap->payload));
      if (contents.last_sequence > snapshot_covered_ &&
          contents.last_sequence <= store_->last_sequence()) {
        LEAKDET_RETURN_IF_ERROR(store_->InstallSnapshot(contents));
        snapshot_covered_ = contents.last_sequence;
        result.snapshot_installed = true;
      }
    }
  }
  return result;
}

void ClusterNode::StopServing() {
  if (!serving_) return;
  serving_ = false;
  if (replication_server_ != nullptr) replication_server_->Stop();
  // Gateway first (drains detection; its sink still feeds the trainer), then
  // the trainer (drains its mailbox into the store), then one final sync so
  // everything accepted before the stop is durable.
  gateway_.Stop();
  training_sink_.store(nullptr, std::memory_order_release);
  if (trainer_ != nullptr) trainer_->Stop();
  if (store_ != nullptr) (void)store_->Sync();
}

}  // namespace leakdet::cluster
