#ifndef LEAKDET_SIM_FLEET_H_
#define LEAKDET_SIM_FLEET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/device.h"
#include "sim/trafficgen.h"
#include "util/rng.h"

namespace leakdet::sim {

/// Fleet-shape knobs. The paper ran one instrumented handset; the
/// crowdsourced federation direction (PrivacyProxy, PAPERS.md) needs traffic
/// from *many* devices, each with its own identifier values, so that
/// distinct-device frequency thresholds separate per-user PII from
/// app-invariant structure.
struct FleetConfig {
  uint64_t seed = 2013;
  /// Number of handsets. Profiles are derived per index on demand
  /// (MakeDeviceAt), so fleets of millions cost no materialization.
  size_t num_devices = 100;
  /// Zipf skew of per-device activity (0 = uniform fleet; higher = a head
  /// of heavy users emits most packets, the empirical shape of app usage).
  double device_skew = 0.6;
  /// Fleet-wide packet arrival rate (events/second of simulated time).
  /// Inter-arrival times are exponential — a Poisson process whose
  /// per-device thinning follows the activity skew.
  double events_per_second = 1000.0;
  /// Market shape (catalog, scale, population); the market is shared by the
  /// whole fleet — one app universe, many handsets. `market.device_seed`
  /// and the single-device fields are unused here.
  TrafficConfig market;
};

/// A simulated fleet: one market (apps + services) and `num_devices`
/// handsets whose profiles are pure functions of (seed, index). Thread-safe
/// for concurrent readers once constructed.
class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);

  const FleetConfig& config() const { return config_; }
  size_t num_devices() const { return config_.num_devices; }

  /// The device at `index` (0-based), derived from its own seeded stream:
  /// replay-stable, order-independent, device-unique (see MakeDeviceAt).
  DeviceProfile DeviceAt(uint64_t index) const;

  /// Stable 64-bit key for `index`, suitable for gateway routing and
  /// K-anonymity witness hashing.
  uint64_t DeviceKey(uint64_t index) const;

  const std::vector<ServiceSpec>& services() const { return market_.services; }
  size_t background_begin() const { return market_.background_begin; }
  const Population& population() const { return market_.population; }

  /// One fleet arrival: a packet emitted by one device at one point in
  /// simulated time.
  struct Event {
    uint64_t device_index = 0;
    double time_s = 0.0;
    LabeledPacket packet;
  };

  /// Streaming arrival process over the fleet. Deterministic in
  /// (fleet seed, stream salt); two streams with the same salt replay the
  /// same event sequence. Per-event packet randomness is drawn from a
  /// per-(device, sequence) stream, so an event's content depends only on
  /// which device emitted it and how many packets that device has emitted —
  /// not on interleaving with other devices.
  class Stream {
   public:
    explicit Stream(const Fleet* fleet, uint64_t salt = 0);

    /// Generates the next arrival.
    Event Next();

    uint64_t events_generated() const { return events_; }

   private:
    const Fleet* fleet_;
    Rng arrivals_;  ///< device choice + inter-arrival times
    double now_s_ = 0.0;
    uint64_t events_ = 0;
    /// Per-device emission counters (only touched devices get an entry).
    std::unordered_map<uint64_t, uint32_t> device_seq_;
  };

  Stream NewStream(uint64_t salt = 0) const { return Stream(this, salt); }

 private:
  friend class Stream;

  /// Renders packet number `seq` of device `device_index` on its own
  /// derived stream (pure function of fleet seed, device, seq).
  LabeledPacket RenderEvent(uint64_t device_index, uint32_t seq) const;

  FleetConfig config_;
  Market market_;
  ZipfSampler device_sampler_;
  /// Cumulative activity weights over apps (binary-searched per event:
  /// O(log apps), not O(apps)).
  std::vector<double> app_cdf_;
};

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_FLEET_H_
