#ifndef LEAKDET_SIM_TRAFFICGEN_H_
#define LEAKDET_SIM_TRAFFICGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "sim/catalog.h"
#include "sim/device.h"
#include "sim/population.h"

namespace leakdet::sim {

/// One generated packet with its ground-truth labels.
struct LabeledPacket {
  core::HttpPacket packet;
  uint32_t service_index = 0;  ///< index into Trace::services
  std::vector<core::SensitiveType> truth;  ///< types embedded at generation

  bool sensitive() const { return !truth.empty(); }
};

/// Generator knobs (defaults reproduce the paper's dataset scale).
struct TrafficConfig {
  uint64_t seed = 42;
  /// Seed for the handset's identifiers, independent of the market seed:
  /// two configs differing only here produce the *same* apps, services, and
  /// traffic shapes but a different device — the cross-device
  /// generalization experiment. 0 = derive from `seed`.
  uint64_t device_seed = 0;
  /// Linear scale on both app count and packet counts. 1.0 = paper scale
  /// (1,188 apps, ~107,859 packets); use e.g. 0.05 for unit tests.
  double scale = 1.0;
  /// Total packet target before scaling (§V-A).
  int total_packets = 107859;
  /// Size of the benign long-tail host pool before scaling.
  int background_host_pool = 1400;
  /// Add the XOR-obfuscating module (§VI's obfuscation scenario) on top of
  /// the calibrated catalog. Off by default so the Table II/III benches
  /// reproduce the paper's totals exactly.
  bool include_obfuscated_module = false;
};

/// A complete simulated dataset: the device, the combined service list
/// (named catalog + leaky long tail + benign background), the app
/// population, and the labeled packet trace.
struct Trace {
  DeviceProfile device;
  std::vector<ServiceSpec> services;  ///< leaky catalog ++ background pool
  size_t background_begin = 0;        ///< first background index in services
  Population population;
  std::vector<LabeledPacket> packets;

  /// Convenience: packets projected to core::HttpPacket.
  std::vector<core::HttpPacket> RawPackets() const;

  /// Ground-truth split (order-preserving), per the generation labels.
  void SplitByTruth(std::vector<core::HttpPacket>* suspicious,
                    std::vector<core::HttpPacket>* normal) const;
};

/// Generates the full dataset. Deterministic in `config.seed`.
Trace GenerateTrace(const TrafficConfig& config = {});

/// The device-independent half of a Trace: the service universe and the app
/// population with their assignments. Shared by GenerateTrace (one handset)
/// and sim::Fleet (millions of handsets over the same market).
struct Market {
  std::vector<ServiceSpec> services;  ///< leaky catalog ++ background pool
  size_t background_begin = 0;        ///< first background index in services
  Population population;
};

/// Assembles the market exactly as GenerateTrace does, consuming the same
/// stretch of `rng` (callers that mirror GenerateTrace's stream phase get a
/// bit-identical market for the same seed).
Market BuildMarket(const TrafficConfig& config, Rng* rng);

/// Renders one packet of `svc` as emitted by (`device`, `app`): the shared
/// template engine behind both the single-handset GenerateTrace and the
/// fleet generator (sim/fleet.h). All randomness flows through `rng`.
/// `session_cookie` supplies the persistent per-(app, service) cookie when
/// `svc.uses_cookie`; it is invoked lazily and in wire-render order, so a
/// caller deriving cookies from the same `rng` observes an unchanged stream
/// phase relative to older single-device traces.
using SessionCookieFn =
    std::function<std::string(uint32_t app_id, uint32_t service_index)>;
LabeledPacket RenderServicePacket(const ServiceSpec& svc, uint32_t svc_index,
                                  const App& app, const DeviceProfile& device,
                                  const SessionCookieFn& session_cookie,
                                  Rng* rng);

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_TRAFFICGEN_H_
