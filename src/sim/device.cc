#include "sim/device.h"

#include "sim/identifiers.h"

namespace leakdet::sim {

core::DeviceTokens DeviceProfile::ToTokens() const {
  core::DeviceTokens t;
  t.android_id = android_id;
  t.imei = imei;
  t.imsi = imsi;
  t.sim_serial = sim_serial;
  t.carrier = carrier;
  return t;
}

const std::vector<std::string>& CarrierCatalog() {
  static const std::vector<std::string> kCarriers = {
      "NTT DOCOMO",
      "SoftBank",
      "KDDI",
      "EMOBILE",
      "WILLCOM",
  };
  return kCarriers;
}

DeviceProfile MakeDevice(Rng* rng, const std::string& carrier) {
  DeviceProfile d;
  d.android_id = GenerateAndroidId(rng);
  d.imei = GenerateImei(rng);
  d.imsi = GenerateImsi(rng);
  d.sim_serial = GenerateSimSerial(rng);
  d.carrier = carrier.empty() ? CarrierCatalog()[0] : carrier;
  return d;
}

}  // namespace leakdet::sim
