#include "sim/device.h"

#include "sim/identifiers.h"

namespace leakdet::sim {

core::DeviceTokens DeviceProfile::ToTokens() const {
  core::DeviceTokens t;
  t.android_id = android_id;
  t.imei = imei;
  t.imsi = imsi;
  t.sim_serial = sim_serial;
  t.carrier = carrier;
  return t;
}

const std::vector<std::string>& CarrierCatalog() {
  static const std::vector<std::string> kCarriers = {
      "NTT DOCOMO",
      "SoftBank",
      "KDDI",
      "EMOBILE",
      "WILLCOM",
  };
  return kCarriers;
}

DeviceProfile MakeDevice(Rng* rng, const std::string& carrier) {
  DeviceProfile d;
  d.android_id = GenerateAndroidId(rng);
  d.imei = GenerateImei(rng);
  d.imsi = GenerateImsi(rng);
  d.sim_serial = GenerateSimSerial(rng);
  d.carrier = carrier.empty() ? CarrierCatalog()[0] : carrier;
  return d;
}

uint64_t DeviceStreamSeed(uint64_t fleet_seed, uint64_t index) {
  // SplitMix64 finalizer over the (seed, index) pair: adjacent indices land
  // on statistically independent streams, and the mix is a pure function so
  // the derivation is stable across runs and platforms.
  uint64_t z = fleet_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

DeviceProfile MakeDeviceAt(uint64_t fleet_seed, uint64_t index) {
  Rng rng(DeviceStreamSeed(fleet_seed, index));
  const std::vector<std::string>& carriers = CarrierCatalog();
  // Carrier market share is lopsided toward the big three; weight the head.
  static const double kShare[] = {0.45, 0.25, 0.22, 0.05, 0.03};
  double u = rng.UniformDouble();
  size_t pick = carriers.size() - 1;
  double acc = 0.0;
  for (size_t i = 0; i < carriers.size(); ++i) {
    acc += kShare[i];
    if (u < acc) {
      pick = i;
      break;
    }
  }
  return MakeDevice(&rng, carriers[pick]);
}

}  // namespace leakdet::sim
