#include "sim/identifiers.h"

#include <array>
#include <cassert>

#include "util/strutil.h"

namespace leakdet::sim {

char LuhnCheckDigit(std::string_view digits) {
  // Standard Luhn: double every second digit from the right (the check digit
  // position counts as position 1, so the payload's rightmost digit is
  // doubled).
  int sum = 0;
  bool dbl = true;
  for (size_t i = digits.size(); i-- > 0;) {
    int d = digits[i] - '0';
    assert(d >= 0 && d <= 9);
    if (dbl) {
      d *= 2;
      if (d > 9) d -= 9;
    }
    sum += d;
    dbl = !dbl;
  }
  int check = (10 - (sum % 10)) % 10;
  return static_cast<char>('0' + check);
}

bool LuhnValid(std::string_view digits) {
  if (digits.size() < 2 || !IsAllDigits(digits)) return false;
  return LuhnCheckDigit(digits.substr(0, digits.size() - 1)) == digits.back();
}

std::string GenerateImei(Rng* rng) {
  // TACs beginning 35 are common GSM allocations (the reporting-body digit
  // 35 = BABT).
  std::string body = "35";
  body += rng->RandomDigits(6);   // rest of the TAC
  body += rng->RandomDigits(6);   // serial number
  body += LuhnCheckDigit(body);
  return body;
}

std::string GenerateImsi(Rng* rng, std::string_view mcc,
                         std::string_view mnc) {
  std::string imsi(mcc);
  imsi += mnc;
  imsi += rng->RandomDigits(15 - imsi.size());
  return imsi;
}

std::string GenerateSimSerial(Rng* rng) {
  // 89 = telecom purposes, 81 = Japan country code, then issuer + account.
  std::string body = "8981";
  body += rng->RandomDigits(14);
  body += LuhnCheckDigit(body);
  return body;
}

std::string GenerateAndroidId(Rng* rng) {
  // Ensure a leading non-zero nibble so the ID is always 16 chars in every
  // rendering.
  std::string id = rng->RandomString(1, "123456789abcdef");
  id += rng->RandomHex(15);
  return id;
}

bool LooksLikeImei(std::string_view s) {
  return s.size() == 15 && IsAllDigits(s) && LuhnValid(s);
}

bool LooksLikeImsi(std::string_view s) {
  return s.size() == 15 && IsAllDigits(s);
}

bool LooksLikeSimSerial(std::string_view s) {
  return (s.size() == 19 || s.size() == 20) && IsAllDigits(s) &&
         s.substr(0, 2) == "89" && LuhnValid(s);
}

bool LooksLikeAndroidId(std::string_view s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

}  // namespace leakdet::sim
