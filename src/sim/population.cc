#include "sim/population.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_set>

#include "sim/paper_tables.h"

namespace leakdet::sim {

std::vector<int> Population::PermissionComboCounts() const {
  std::vector<int> counts(6, 0);
  for (const App& app : apps) {
    uint32_t bits = app.permissions.bits & ~static_cast<uint32_t>(kOther);
    if (bits == kInternet && !app.permissions.Has(kOther)) {
      counts[0]++;
    } else if (bits == (kInternet | kLocation)) {
      counts[1]++;
    } else if (bits == (kInternet | kLocation | kReadPhoneState)) {
      counts[2]++;
    } else if (bits == (kInternet | kReadPhoneState)) {
      counts[3]++;
    } else if (bits ==
               (kInternet | kLocation | kReadPhoneState | kReadContacts)) {
      counts[4]++;
    } else {
      counts[5]++;
    }
  }
  return counts;
}

namespace {

int Scaled(int value, double scale) {
  return std::max(1, static_cast<int>(std::lround(value * scale)));
}

/// Geometric draw with the given mean (support {0, 1, 2, ...}).
int GeometricDraw(Rng* rng, double mean) {
  double p = 1.0 / (mean + 1.0);
  double u = rng->UniformDouble();
  if (u <= 0) u = 1e-12;
  return static_cast<int>(std::floor(std::log(u) / std::log(1.0 - p)));
}

std::string MakePackageName(Rng* rng, uint32_t id) {
  static constexpr std::string_view kVendors[] = {
      "jp.co", "com", "jp.ne", "net", "org"};
  static constexpr std::string_view kNames[] = {
      "puzzle", "battery", "camera", "weather", "manga", "news",  "recipe",
      "quiz",   "ranking", "diary",  "alarm",   "radio", "photo", "runner"};
  std::string pkg(kVendors[rng->UniformInt(std::size(kVendors))]);
  pkg += '.';
  pkg += rng->RandomString(5 + rng->UniformInt(4), "abcdefghijklmnopqrstuvwxyz");
  pkg += '.';
  pkg += kNames[rng->UniformInt(std::size(kNames))];
  pkg += std::to_string(id);
  return pkg;
}

}  // namespace

Population GeneratePopulation(Rng* rng,
                              const std::vector<ServiceSpec>& catalog,
                              const std::vector<ServiceSpec>& background,
                              const PopulationConfig& config) {
  Population pop;

  // 1. Permission sets per Table I (scaled), plus the "other" remainder.
  std::vector<uint32_t> permission_bits;
  for (const PaperTable1Row& row : kPaperTable1) {
    uint32_t bits = 0;
    if (row.internet) bits |= kInternet;
    if (row.location) bits |= kLocation;
    if (row.phone_state) bits |= kReadPhoneState;
    if (row.contacts) bits |= kReadContacts;
    int count = Scaled(row.apps, config.app_scale);
    for (int i = 0; i < count; ++i) permission_bits.push_back(bits);
  }
  int other = Scaled(kPaperTable1OtherApps, config.app_scale);
  for (int i = 0; i < other; ++i) {
    permission_bits.push_back(kInternet | kOther);
  }
  rng->Shuffle(&permission_bits);

  // 2. Apps with destination budgets (Fig. 2 distribution) and activity.
  pop.apps.resize(permission_bits.size());
  for (size_t i = 0; i < pop.apps.size(); ++i) {
    App& app = pop.apps[i];
    app.id = static_cast<uint32_t>(i);
    app.package = MakePackageName(rng, app.id);
    app.app_key = rng->RandomHex(16);
    app.permissions.bits = permission_bits[i];
    // Exponential activity: a few chatty apps, many quiet ones.
    app.activity = 0.2 + -std::log(std::max(rng->UniformDouble(), 1e-12));
    if (rng->Bernoulli(config.one_dest_fraction)) {
      app.dest_budget = 1;
    } else {
      app.dest_budget =
          std::min(config.max_dests,
                   2 + GeometricDraw(rng, config.extra_dest_mean));
    }
  }
  if (!pop.apps.empty()) {
    // One embedded-browser-style app with the paper's maximum fan-out.
    size_t browser = rng->UniformInt(pop.apps.size());
    pop.apps[browser].dest_budget = config.max_dests;
  }

  // 3. Catalog service assignment. Process services by descending app
  // target so the big networks get first pick of capacity.
  std::vector<int> capacity(pop.apps.size());
  for (size_t i = 0; i < pop.apps.size(); ++i) {
    capacity[i] = pop.apps[i].dest_budget;
  }
  std::vector<size_t> order(catalog.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&catalog](size_t a, size_t b) {
    return catalog[a].target_apps > catalog[b].target_apps;
  });

  // Shared app pools for long-tail leaky types.
  std::map<int, std::vector<size_t>> pools;

  for (size_t svc_idx : order) {
    const ServiceSpec& svc = catalog[svc_idx];
    int want = Scaled(svc.target_apps, config.app_scale);

    // Candidate apps: INTERNET (always true here), phone permission where
    // required, remaining capacity, and pool membership when applicable.
    std::vector<size_t> candidates;
    if (svc.app_pool_id >= 0) {
      auto it = pools.find(svc.app_pool_id);
      if (it == pools.end()) {
        // Materialize the pool: sample pool_size eligible apps.
        std::vector<size_t> eligible;
        for (size_t i = 0; i < pop.apps.size(); ++i) {
          if (svc.requires_phone_permission &&
              !pop.apps[i].permissions.CanReadPhoneIds()) {
            continue;
          }
          if (pop.apps[i].dest_budget < 2) continue;
          eligible.push_back(i);
        }
        rng->Shuffle(&eligible);
        size_t pool_size = std::min<size_t>(
            eligible.size(),
            static_cast<size_t>(std::max(1, Scaled(svc.app_pool_size,
                                                   config.app_scale))));
        eligible.resize(pool_size);
        it = pools.emplace(svc.app_pool_id, std::move(eligible)).first;
      }
      for (size_t i : it->second) {
        if (capacity[i] > 0) candidates.push_back(i);
      }
      if (candidates.empty()) {
        // Small-scale runs can exhaust a tiny pool's capacity before the
        // long-tail services are processed. Rather than dropping a whole
        // sensitive type from the trace, let pool members overflow their
        // destination budget (the budget is a planning figure; the actual
        // Figure 2 distribution is measured from packets).
        candidates = it->second;
      }
    } else {
      for (size_t i = 0; i < pop.apps.size(); ++i) {
        if (svc.requires_phone_permission &&
            !pop.apps[i].permissions.CanReadPhoneIds()) {
          continue;
        }
        if (capacity[i] > 0) candidates.push_back(i);
      }
    }

    // Weighted sample without replacement by remaining capacity.
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (size_t i : candidates) {
      weights.push_back(std::max(1.0, static_cast<double>(capacity[i])));
    }
    int take = std::min<int>(want, static_cast<int>(candidates.size()));
    for (int t = 0; t < take; ++t) {
      size_t pick = rng->WeightedIndex(weights);
      size_t app_idx = candidates[pick];
      pop.apps[app_idx].services.push_back(svc_idx);
      if (capacity[app_idx] > 0) {
        capacity[app_idx]--;
      } else {
        pop.apps[app_idx].dest_budget++;  // overflow: keep the invariant
      }
      weights[pick] = 0.0;
      // If every weight went to zero early, stop.
      bool any = false;
      for (double w : weights) {
        if (w > 0) {
          any = true;
          break;
        }
      }
      if (!any) break;
    }
  }

  // 4. Fill leftover capacity with background hosts (Zipf popularity).
  if (!background.empty()) {
    ZipfSampler zipf(background.size(), 0.9);
    for (size_t i = 0; i < pop.apps.size(); ++i) {
      std::unordered_set<size_t> chosen;
      int guard = 0;
      while (capacity[i] > 0 && guard < 50 * pop.apps[i].dest_budget + 200) {
        ++guard;
        size_t host = zipf.Sample(rng);
        if (chosen.insert(host).second) {
          pop.apps[i].background_hosts.push_back(host);
          capacity[i]--;
        }
      }
      // Degenerate fallback: take hosts in order if Zipf keeps colliding.
      for (size_t h = 0; capacity[i] > 0 && h < background.size(); ++h) {
        if (chosen.insert(h).second) {
          pop.apps[i].background_hosts.push_back(h);
          capacity[i]--;
        }
      }
    }
  }
  return pop;
}

}  // namespace leakdet::sim
