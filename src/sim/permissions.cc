#include "sim/permissions.h"

namespace leakdet::sim {

std::string PermissionSet::ToString() const {
  std::string out;
  auto append = [&out](const char* tag) {
    if (!out.empty()) out += '+';
    out += tag;
  };
  if (Has(kInternet)) append("I");
  if (Has(kLocation)) append("L");
  if (Has(kReadPhoneState)) append("P");
  if (Has(kReadContacts)) append("C");
  if (Has(kOther)) append("O");
  if (out.empty()) out = "-";
  return out;
}

}  // namespace leakdet::sim
