#include "sim/trafficgen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/xor_obfuscate.h"
#include "http/url.h"
#include "util/strutil.h"

namespace leakdet::sim {

std::vector<core::HttpPacket> Trace::RawPackets() const {
  std::vector<core::HttpPacket> out;
  out.reserve(packets.size());
  for (const LabeledPacket& lp : packets) out.push_back(lp.packet);
  return out;
}

void Trace::SplitByTruth(std::vector<core::HttpPacket>* suspicious,
                         std::vector<core::HttpPacket>* normal) const {
  for (const LabeledPacket& lp : packets) {
    (lp.sensitive() ? suspicious : normal)->push_back(lp.packet);
  }
}

namespace {

uint32_t Fnv1a(std::string_view s) {
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// Deterministic host IP inside the service's /16 block.
net::Ipv4Address HostIp(const ServiceSpec& svc, const std::string& host) {
  uint32_t low = Fnv1a(host) & 0xFFFFu;
  if ((low & 0xFF) == 0) low |= 1;  // avoid .0 host part
  return net::Ipv4Address(svc.ip_base | low);
}

/// Renders one identifier for the wire.
std::string EncodeIdValue(const DeviceProfile& device, const LeakField& leak,
                          Rng* rng) {
  std::string raw;
  switch (leak.kind) {
    case IdKind::kAndroidId:
      raw = device.android_id;
      break;
    case IdKind::kImei:
      raw = device.imei;
      break;
    case IdKind::kImsi:
      raw = device.imsi;
      break;
    case IdKind::kSimSerial:
      raw = device.sim_serial;
      break;
    case IdKind::kCarrier:
      return device.carrier;  // never hashed
  }
  std::string value;
  switch (leak.hash) {
    case HashMode::kNone:
      return raw;
    case HashMode::kMd5:
      value = crypto::Md5Hex(raw);
      break;
    case HashMode::kSha1:
      value = crypto::Sha1Hex(raw);
      break;
    case HashMode::kXor:
      return crypto::XorObfuscateHex(raw, leak.xor_key);
  }
  if (leak.uppercase_fraction > 0 && rng->Bernoulli(leak.uppercase_fraction)) {
    value = AsciiToUpper(value);
  }
  return value;
}

/// Splits `total` units over `weights`, guaranteeing one unit per slot
/// (callers ensure total >= weights.size()). Deterministic given the rng.
std::vector<int> Allocate(int total, const std::vector<double>& weights,
                          Rng* rng) {
  const size_t n = weights.size();
  std::vector<int> counts(n, 0);
  if (n == 0 || total <= 0) return counts;
  int base_total = total;
  if (static_cast<size_t>(total) >= n) {
    for (size_t i = 0; i < n; ++i) counts[i] = 1;
    base_total = total - static_cast<int>(n);
  } else {
    // Not enough for one each: give to the heaviest slots.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&weights](size_t a, size_t b) { return weights[a] > weights[b]; });
    for (int i = 0; i < total; ++i) counts[order[static_cast<size_t>(i)]] = 1;
    return counts;
  }
  double wsum = 0;
  for (double w : weights) wsum += std::max(w, 1e-9);
  // Expected allocation, then distribute the rounding remainder randomly
  // (weight-proportional).
  int assigned = 0;
  std::vector<double> frac(n);
  for (size_t i = 0; i < n; ++i) {
    double expected = base_total * std::max(weights[i], 1e-9) / wsum;
    int whole = static_cast<int>(expected);
    counts[i] += whole;
    assigned += whole;
    frac[i] = expected - whole;
  }
  int leftover = base_total - assigned;
  for (int k = 0; k < leftover; ++k) {
    counts[rng->WeightedIndex(frac)] += 1;
  }
  return counts;
}

/// Stable per-SDK version string (shared across a white-label SDK's
/// backend families).
std::string SdkVersion(const ServiceSpec& svc) {
  uint32_t h = Fnv1a(svc.sdk_tag.empty() ? svc.name : svc.sdk_tag);
  return std::to_string(1 + h % 5) + "." + std::to_string(h / 5 % 10) + "." +
         std::to_string(h / 50 % 10);
}

/// Per-SDK template vocabulary. Every ad/analytics SDK names its boilerplate
/// parameters differently; without this diversity all ad requests would
/// share one giant invariant template and distinct services would collapse
/// into a single cluster (which the real dataset does not do).
struct SdkVocabulary {
  std::string app_key;   ///< publisher/app key parameter name
  std::string format;    ///< ad-format boilerplate ("fmt=banner320x50")
  std::string platform;  ///< OS boilerplate
  std::string device;    ///< device-model boilerplate ("dm" param name)
};

SdkVocabulary VocabularyFor(const ServiceSpec& svc) {
  static constexpr std::string_view kAppKey[] = {
      "app_id", "appid", "pub", "publisher", "app_key", "spot", "zone_id"};
  static constexpr std::string_view kFormat[] = {
      "fmt=banner320x50", "format=320x50", "ad_type=banner", "sz=320x50mb",
      "slot=banner_a", "adspot=b320"};
  static constexpr std::string_view kPlatform[] = {
      "os=android-2.3.4", "platform=android&osv=2.3.4", "sdk_os=android234",
      "env=android_2_3", "osver=2.3.4"};
  static constexpr std::string_view kDevice[] = {"dm", "model", "device",
                                                 "handset", "ua_model"};
  uint32_t h = Fnv1a(svc.sdk_tag.empty() ? svc.name : svc.sdk_tag);
  SdkVocabulary v;
  v.app_key = std::string(kAppKey[h % std::size(kAppKey)]);
  v.format = std::string(kFormat[(h / 7) % std::size(kFormat)]);
  v.platform = std::string(kPlatform[(h / 41) % std::size(kPlatform)]);
  v.device = std::string(kDevice[(h / 211) % std::size(kDevice)]);
  return v;
}

class PacketRenderer {
 public:
  PacketRenderer(const DeviceProfile& device, Rng* rng)
      : device_(device), rng_(rng) {}

  LabeledPacket Render(const ServiceSpec& svc, uint32_t svc_index,
                       const App& app) {
    return RenderServicePacket(
        svc, svc_index, app, device_,
        [this](uint32_t app_id, uint32_t service_index) {
          return SessionCookie(app_id, service_index);
        },
        rng_);
  }

 private:
  /// Persistent per-(app, service) session cookie: the same value appears in
  /// both the leaking and non-leaking packets of one app's session.
  const std::string& SessionCookie(uint32_t app_id, uint32_t svc_index) {
    auto key = std::make_pair(app_id, svc_index);
    auto it = cookies_.find(key);
    if (it == cookies_.end()) {
      it = cookies_.emplace(key, rng_->RandomHex(16)).first;
    }
    return it->second;
  }

  const DeviceProfile& device_;
  Rng* rng_;
  uint64_t seq_ = 0;
  std::map<std::pair<uint32_t, uint32_t>, std::string> cookies_;
};

}  // namespace

LabeledPacket RenderServicePacket(const ServiceSpec& svc, uint32_t svc_index,
                                  const App& app, const DeviceProfile& device,
                                  const SessionCookieFn& session_cookie,
                                  Rng* rng) {
  LabeledPacket lp;
  lp.service_index = svc_index;

  const std::string& host = svc.host_per_packet
                                ? svc.hosts[rng->UniformInt(svc.hosts.size())]
                                : svc.hosts[app.id % svc.hosts.size()];
  net::Endpoint dst;
  dst.host = host;
  dst.ip = HostIp(svc, host);
  dst.port = svc.port;

  SdkVocabulary vocab = VocabularyFor(svc);
  std::vector<http::QueryParam> params;
  std::string path = svc.path;
  switch (svc.style) {
    case TemplateStyle::kAdRequest: {
      params.push_back({vocab.app_key, app.app_key});
      params.push_back({"sdk", SdkVersion(svc)});
      auto fmt = Split(vocab.format, '=');
      params.push_back({std::string(fmt[0]), std::string(fmt[1])});
      // Platform boilerplate may expand to more than one pair.
      for (auto field : Split(vocab.platform, '&')) {
        auto kv = Split(field, '=');
        params.push_back({std::string(kv[0]), std::string(kv[1])});
      }
      params.push_back({vocab.device, device.model});
      break;
    }
    case TemplateStyle::kAnalytics:
      params.push_back({"v", SdkVersion(svc)});
      params.push_back(
          {vocab.app_key, "UA-" + std::to_string(10000 + app.id) + "-1"});
      params.push_back({"an", app.package});
      params.push_back({"sr", "480x800"});
      params.push_back({"t", "event"});
      break;
    case TemplateStyle::kContent:
      path += "/" + rng->RandomHex(12) + ".png";
      break;
    case TemplateStyle::kWebApi:
      params.push_back({vocab.app_key, app.app_key});
      params.push_back({"ver", SdkVersion(svc)});
      params.push_back({"lang", "ja"});
      params.push_back({"fmt", "json"});
      break;
    case TemplateStyle::kGamePlatform:
      params.push_back({"app", app.package});
      params.push_back({"viewer", std::to_string(20000000 + app.id * 7)});
      params.push_back({"session", rng->RandomHex(16)});
      break;
  }

  // Identifier fields (the leak profile).
  bool previous_fired = false;
  for (const LeakField& leak : svc.leaks) {
    if (leak.only_with_previous && !previous_fired) continue;
    if (!rng->Bernoulli(leak.probability)) {
      previous_fired = false;
      continue;
    }
    previous_fired = true;
    params.push_back({leak.param, EncodeIdValue(device, leak, rng)});
    lp.truth.push_back(ToSensitiveType(leak.kind, leak.hash));
  }
  std::sort(lp.truth.begin(), lp.truth.end());
  lp.truth.erase(std::unique(lp.truth.begin(), lp.truth.end()),
                 lp.truth.end());

  // Per-packet noise: cache buster and a capture-window timestamp. The
  // trace spans months (Jan–Apr 2012), so timestamps share no usable
  // prefix — a monotone counter here would hand the signature generator
  // spurious "ts=13280…" invariant tokens.
  params.push_back({"r", rng->RandomHex(8)});
  params.push_back(
      {"ts", std::to_string(1325376000 + rng->UniformInt(10368000))});

  http::HttpRequest req;
  if (svc.post_body) {
    req.set_method("POST");
    req.set_target(path);
    req.set_body(http::BuildQuery(params));
  } else {
    req.set_method("GET");
    std::string query = http::BuildQuery(params);
    req.set_target(query.empty() ? path : path + "?" + query);
  }
  req.AddHeader("Host", host);
  req.AddHeader("User-Agent",
                "Dalvik/1.4.0 (Linux; U; Android " + device.os_version +
                    "; ja-jp; " + device.model + " Build/GRJ22)");
  if (svc.uses_cookie) {
    req.AddHeader("Cookie", "sid=" + session_cookie(app.id, svc_index));
  }
  if (svc.post_body) {
    req.AddHeader("Content-Type", "application/x-www-form-urlencoded");
    req.AddHeader("Content-Length", std::to_string(req.body().size()));
  }
  req.AddHeader("Connection", "Keep-Alive");

  lp.packet = core::MakePacket(app.id, dst, req);
  return lp;
}

Market BuildMarket(const TrafficConfig& config, Rng* rng) {
  Market market;
  // Assemble the service universe: named catalog + leaky long tail, then the
  // benign background pool.
  market.services = DefaultCatalog();
  if (config.include_obfuscated_module) {
    market.services.push_back(MakeObfuscatedModule());
  }
  {
    std::vector<ServiceSpec> lt = MakeLongTailLeakyServices(rng);
    market.services.insert(market.services.end(),
                           std::make_move_iterator(lt.begin()),
                           std::make_move_iterator(lt.end()));
  }
  market.background_begin = market.services.size();
  {
    size_t bg_count = std::max<size_t>(
        8, static_cast<size_t>(config.background_host_pool * config.scale));
    std::vector<ServiceSpec> bg = MakeLongTailNormalServices(rng, bg_count);
    market.services.insert(market.services.end(),
                           std::make_move_iterator(bg.begin()),
                           std::make_move_iterator(bg.end()));
  }

  // Population and assignments (catalog = leaky prefix of services).
  std::vector<ServiceSpec> catalog(
      market.services.begin(),
      market.services.begin() + static_cast<long>(market.background_begin));
  std::vector<ServiceSpec> background(
      market.services.begin() + static_cast<long>(market.background_begin),
      market.services.end());
  PopulationConfig pop_config;
  pop_config.app_scale = config.scale;
  market.population = GeneratePopulation(rng, catalog, background, pop_config);
  return market;
}

Trace GenerateTrace(const TrafficConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  {
    // Dedicated stream: changing the device must not perturb the market.
    Rng device_rng(config.device_seed != 0
                       ? config.device_seed
                       : config.seed * 0x9E3779B97F4A7C15ULL + 1);
    trace.device = MakeDevice(&device_rng);
    rng.Next();  // keep the main stream's phase stable across versions
  }

  Market market = BuildMarket(config, &rng);
  trace.services = std::move(market.services);
  trace.background_begin = market.background_begin;
  trace.population = std::move(market.population);

  PacketRenderer renderer(trace.device, &rng);

  // 1. Named + leaky services: split each target among its assigned apps.
  int named_total = 0;
  for (size_t s = 0; s < trace.background_begin; ++s) {
    const ServiceSpec& svc = trace.services[s];
    std::vector<size_t> assigned;
    for (const App& app : trace.population.apps) {
      for (size_t svc_idx : app.services) {
        if (svc_idx == s) assigned.push_back(app.id);
      }
    }
    if (assigned.empty()) continue;
    int target = std::max<int>(
        static_cast<int>(assigned.size()),
        static_cast<int>(std::lround(svc.target_packets * config.scale)));
    std::vector<double> weights;
    weights.reserve(assigned.size());
    for (size_t app_id : assigned) {
      weights.push_back(trace.population.apps[app_id].activity);
    }
    std::vector<int> counts = Allocate(target, weights, &rng);
    for (size_t a = 0; a < assigned.size(); ++a) {
      const App& app = trace.population.apps[assigned[a]];
      for (int k = 0; k < counts[a]; ++k) {
        trace.packets.push_back(
            renderer.Render(svc, static_cast<uint32_t>(s), app));
        ++named_total;
      }
    }
  }

  // 2. Background pairs consume the remaining budget (>= 1 packet per pair
  // so Figure 2's destination counts hold).
  std::vector<std::pair<size_t, size_t>> pairs;  // (app index, service index)
  std::vector<double> pair_weights;
  for (const App& app : trace.population.apps) {
    for (size_t bg : app.background_hosts) {
      pairs.emplace_back(app.id, trace.background_begin + bg);
      pair_weights.push_back(app.activity);
    }
  }
  int total_target =
      static_cast<int>(std::lround(config.total_packets * config.scale));
  int bg_budget = std::max<int>(static_cast<int>(pairs.size()),
                                total_target - named_total);
  std::vector<int> bg_counts = Allocate(bg_budget, pair_weights, &rng);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const App& app = trace.population.apps[pairs[p].first];
    const ServiceSpec& svc = trace.services[pairs[p].second];
    for (int k = 0; k < bg_counts[p]; ++k) {
      trace.packets.push_back(
          renderer.Render(svc, static_cast<uint32_t>(pairs[p].second), app));
    }
  }

  rng.Shuffle(&trace.packets);
  return trace;
}

}  // namespace leakdet::sim
