#ifndef LEAKDET_SIM_PERMISSIONS_H_
#define LEAKDET_SIM_PERMISSIONS_H_

#include <cstdint>
#include <string>

namespace leakdet::sim {

/// The permissions the paper's Table I tracks, as bit flags.
enum Permission : uint32_t {
  kInternet = 1u << 0,
  kLocation = 1u << 1,         // ACCESS_FINE/COARSE_LOCATION
  kReadPhoneState = 1u << 2,   // READ_PHONE_STATE (IMEI/IMSI/SIM serial)
  kReadContacts = 1u << 3,     // READ_CONTACTS
  kOther = 1u << 4,            // any non-sensitive extra (VIBRATE, WAKE_LOCK…)
};

/// A requested-permission set (the AndroidManifest view of one app).
struct PermissionSet {
  uint32_t bits = 0;

  bool Has(Permission p) const { return (bits & p) != 0; }

  /// True when the set pairs INTERNET with at least one sensitive-information
  /// permission — the paper's "dangerous combination" (§III-A).
  bool IsDangerousCombination() const {
    return Has(kInternet) &&
           (Has(kLocation) || Has(kReadPhoneState) || Has(kReadContacts));
  }

  /// Can this app read UDIDs guarded by READ_PHONE_STATE (IMEI/IMSI/SIM)?
  bool CanReadPhoneIds() const { return Has(kReadPhoneState); }

  /// ANDROID_ID and the carrier name require no dangerous permission on the
  /// paper's Android versions, so any app can obtain them.
  static constexpr bool CanReadAndroidId() { return true; }

  /// "I+L+P" style display form (Table I row key).
  std::string ToString() const;

  friend bool operator==(PermissionSet a, PermissionSet b) {
    return a.bits == b.bits;
  }
};

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_PERMISSIONS_H_
