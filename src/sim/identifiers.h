#ifndef LEAKDET_SIM_IDENTIFIERS_H_
#define LEAKDET_SIM_IDENTIFIERS_H_

#include <string>
#include <string_view>

#include "util/rng.h"

namespace leakdet::sim {

/// Luhn check digit (mod-10) for a digit string; returns '0'..'9'.
/// IMEIs and ICCIDs carry a trailing Luhn digit.
char LuhnCheckDigit(std::string_view digits);

/// True iff `digits` (>= 2 chars, all digits) passes the Luhn check.
bool LuhnValid(std::string_view digits);

/// Generates a structurally valid 15-digit IMEI: 8-digit TAC (type
/// allocation code) from a real-looking range, 6-digit serial, Luhn digit.
std::string GenerateImei(Rng* rng);

/// Generates a 15-digit IMSI with the given MCC/MNC prefix (defaults to a
/// Japanese carrier: MCC 440).
std::string GenerateImsi(Rng* rng, std::string_view mcc = "440",
                         std::string_view mnc = "10");

/// Generates a 19-digit ICCID (SIM serial): "8981" (telecom/JP) + issuer +
/// serial + Luhn digit.
std::string GenerateSimSerial(Rng* rng);

/// Generates a 16-char lowercase-hex Android ID (the 64-bit value assigned
/// at first boot).
std::string GenerateAndroidId(Rng* rng);

/// Structural validators (used by tests and the payload-check oracle).
bool LooksLikeImei(std::string_view s);
bool LooksLikeImsi(std::string_view s);
bool LooksLikeSimSerial(std::string_view s);
bool LooksLikeAndroidId(std::string_view s);

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_IDENTIFIERS_H_
