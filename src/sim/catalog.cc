#include "sim/catalog.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace leakdet::sim {

core::SensitiveType ToSensitiveType(IdKind kind, HashMode hash) {
  // kXor transmits the raw identifier in an invertible encoding, so it
  // counts as the raw category (Table III has no obfuscation rows).
  switch (kind) {
    case IdKind::kAndroidId:
      if (hash == HashMode::kMd5) return core::SensitiveType::kAndroidIdMd5;
      if (hash == HashMode::kSha1) return core::SensitiveType::kAndroidIdSha1;
      return core::SensitiveType::kAndroidId;
    case IdKind::kImei:
      if (hash == HashMode::kMd5) return core::SensitiveType::kImeiMd5;
      if (hash == HashMode::kSha1) return core::SensitiveType::kImeiSha1;
      return core::SensitiveType::kImei;
    case IdKind::kImsi:
      return core::SensitiveType::kImsi;
    case IdKind::kSimSerial:
      return core::SensitiveType::kSimSerial;
    case IdKind::kCarrier:
      return core::SensitiveType::kCarrier;
  }
  return core::SensitiveType::kAndroidId;
}

namespace {

uint32_t Ip(int a, int b) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16);
}

}  // namespace

std::vector<ServiceSpec> DefaultCatalog() {
  std::vector<ServiceSpec> c;
  auto add = [&c](ServiceSpec s) { c.push_back(std::move(s)); };

  // --- Advertisement networks -------------------------------------------
  add({.name = "DoubleClick",
       .domain = "doubleclick.net",
       .hosts = {"ad.doubleclick.net", "googleads.g.doubleclick.net"},
       .ip_base = Ip(173, 194),
       .style = TemplateStyle::kAdRequest,
       .path = "/gampad/ads",
       .uses_cookie = true,
       .leaks = {{IdKind::kAndroidId, HashMode::kMd5, "dc_uid", 0.92, 0.04}},
       .target_packets = 5786,
       .target_apps = 407});
  add({.name = "AdMob",
       .domain = "admob.com",
       .hosts = {"r.admob.com"},
       .ip_base = Ip(74, 125),
       .style = TemplateStyle::kAdRequest,
       .path = "/ad_source.php",
       .leaks = {{IdKind::kAndroidId, HashMode::kMd5, "muid", 0.95, 0.03}},
       .target_packets = 1299,
       .target_apps = 401});
  add({.name = "GoogleAnalytics",
       .domain = "google-analytics.com",
       .hosts = {"www.google-analytics.com", "ssl.google-analytics.com"},
       .ip_base = Ip(64, 233),
       .style = TemplateStyle::kAnalytics,
       .path = "/__utm.gif",
       .uses_cookie = true,
       .leaks = {{IdKind::kAndroidId, HashMode::kMd5, "cid", 0.45, 0.06}},
       .target_packets = 3098,
       .target_apps = 353});
  add({.name = "GoogleSyndication",
       .domain = "googlesyndication.com",
       .hosts = {"pagead2.googlesyndication.com"},
       .ip_base = Ip(173, 194),
       .style = TemplateStyle::kAdRequest,
       .path = "/pagead/ads",
       .leaks = {{IdKind::kAndroidId, HashMode::kMd5, "gsid", 0.95, 0.03}},
       .target_packets = 938,
       .target_apps = 244});
  add({.name = "AdMaker",
       .domain = "ad-maker.info",
       .hosts = {"api.ad-maker.info", "img.ad-maker.info"},
       .ip_base = Ip(203, 104),
       .style = TemplateStyle::kAdRequest,
       .path = "/adpv2/get",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "aid", 0.92, 0.0},
                 {IdKind::kImei, HashMode::kNone, "imei", 0.55, 0.0}},
       .target_packets = 3391,
       .target_apps = 195,
       .requires_phone_permission = true});
  add({.name = "Nend",
       .domain = "nend.net",
       .hosts = {"output.nend.net"},
       .ip_base = Ip(210, 129),
       .style = TemplateStyle::kAdRequest,
       .path = "/na.php",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "androidid", 1.0, 0.0}},
       .target_packets = 1368,
       .target_apps = 192});
  add({.name = "Mydas",
       .domain = "mydas.mobi",
       .hosts = {"ads.mydas.mobi"},
       .ip_base = Ip(216, 133),
       .style = TemplateStyle::kAdRequest,
       .path = "/getAd.php5",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "auid", 1.0, 0.0},
                 {IdKind::kImei, HashMode::kNone, "hdid", 0.6, 0.0}},
       .target_packets = 332,
       .target_apps = 164,
       .requires_phone_permission = true});
  add({.name = "AMoAd",
       .domain = "amoad.com",
       .hosts = {"d.amoad.com"},
       .ip_base = Ip(54, 248),
       .style = TemplateStyle::kAdRequest,
       .path = "/ad/json",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "aid", 1.0, 0.0}},
       .target_packets = 583,
       .target_apps = 116});
  add({.name = "MicroAd",
       .domain = "microad.jp",
       .hosts = {"send.microad.jp"},
       .ip_base = Ip(61, 213),
       .style = TemplateStyle::kAdRequest,
       .path = "/ad/msg",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "uid", 0.70, 0.0},
                 {IdKind::kCarrier, HashMode::kNone, "carrier", 0.30, 0.0}},
       .target_packets = 868,
       .target_apps = 103});
  add({.name = "AdWhirl",
       .domain = "adwhirl.com",
       .hosts = {"met.adwhirl.com"},
       .ip_base = Ip(184, 73),
       .style = TemplateStyle::kAdRequest,
       .path = "/exmet.php",
       .leaks = {{IdKind::kAndroidId, HashMode::kSha1, "udid", 1.0, 0.0}},
       .target_packets = 548,
       .target_apps = 102});
  add({.name = "IMobile",
       .domain = "i-mobile.co.jp",
       .hosts = {"spad.i-mobile.co.jp", "spapi.i-mobile.co.jp"},
       .ip_base = Ip(210, 140),
       .style = TemplateStyle::kAdRequest,
       .path = "/ad/ads",
       .uses_cookie = true,
       // The hashed ID rides only inside carrier-tagged beacons (correlated
       // telemetry), so every sensitive i-mobile packet carries the carrier
       // token: absolute rates are 0.35 carrier, 0.35*0.714 ≈ 0.25 MD5.
       .leaks = {{IdKind::kCarrier, HashMode::kNone, "carrier", 0.35, 0.0},
                 {IdKind::kAndroidId, HashMode::kMd5, "ifa", 0.714, 0.5,
                  /*only_with_previous=*/true}},
       .target_packets = 3729,
       .target_apps = 100});
  add({.name = "Adlantis",
       .domain = "adlantis.jp",
       .hosts = {"sp.adlantis.jp"},
       .ip_base = Ip(175, 41),
       .style = TemplateStyle::kAdRequest,
       .path = "/sp/load_app_ads",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "adid", 1.0, 0.0},
                 {IdKind::kImei, HashMode::kNone, "device_id", 0.6, 0.0}},
       .target_packets = 237,
       .target_apps = 98,
       .requires_phone_permission = true});
  add({.name = "AdImg",
       .domain = "adimg.net",
       .hosts = {"img.adimg.net"},
       .ip_base = Ip(119, 235),
       .style = TemplateStyle::kContent,
       .path = "/sp/img",
       .leaks = {{IdKind::kImei, HashMode::kMd5, "u", 0.80, 0.1}},
       .target_packets = 315,
       .target_apps = 72,
       .requires_phone_permission = true});
  add({.name = "MedibaAd",
       .domain = "medibaad.com",
       .hosts = {"sp.medibaad.com"},
       .ip_base = Ip(111, 87),
       .style = TemplateStyle::kAdRequest,
       .path = "/sdkapi/ad",
       .leaks = {{IdKind::kAndroidId, HashMode::kNone, "said", 1.0, 0.0},
                 {IdKind::kImei, HashMode::kNone, "terminal_id", 0.35, 0.0}},
       .target_packets = 1162,
       .target_apps = 49,
       .requires_phone_permission = true});
  add({.name = "Mediba",
       .domain = "mediba.jp",
       .hosts = {"img.mediba.jp"},
       .ip_base = Ip(111, 86),
       .style = TemplateStyle::kAdRequest,
       .path = "/ad/pickup",
       .leaks = {{IdKind::kImei, HashMode::kMd5, "mid", 0.80, 0.1}},
       .target_packets = 427,
       .target_apps = 48,
       .requires_phone_permission = true});

  // --- Analytics & platforms --------------------------------------------
  add({.name = "Flurry",
       .domain = "flurry.com",
       .hosts = {"data.flurry.com"},
       .ip_base = Ip(74, 6),
       .style = TemplateStyle::kAnalytics,
       .path = "/aap.do",
       .post_body = true,
       .leaks = {{IdKind::kAndroidId, HashMode::kSha1, "u", 1.0, 0.0}},
       .target_packets = 335,
       .target_apps = 119});
  add({.name = "Mobclix",
       .domain = "mobclix.com",
       .hosts = {"data.mobclix.com"},
       .ip_base = Ip(50, 16),
       .style = TemplateStyle::kAnalytics,
       .path = "/post/config",
       .post_body = true,
       .leaks = {{IdKind::kAndroidId, HashMode::kSha1, "deviceid", 1.0, 0.0}},
       .target_packets = 260,
       .target_apps = 48});
  add({.name = "Mobage",
       .domain = "mbga.jp",
       .hosts = {"sp.mbga.jp"},
       .ip_base = Ip(202, 238),
       .style = TemplateStyle::kGamePlatform,
       .path = "/_affiliate_view",
       .uses_cookie = true,
       .leaks = {{IdKind::kImei, HashMode::kSha1, "dev", 0.85, 0.0}},
       .target_packets = 1048,
       .target_apps = 63,
       .requires_phone_permission = true});
  add({.name = "Gree",
       .domain = "gree.jp",
       .hosts = {"sp.gree.jp"},
       .ip_base = Ip(202, 32),
       .style = TemplateStyle::kGamePlatform,
       .path = "/api/rest/profile",
       .uses_cookie = true,
       .target_packets = 228,
       .target_apps = 45});
  add({.name = "Zqapk",
       .domain = "zqapk.com",
       .hosts = {"down.zqapk.com", "api.zqapk.com"},
       .ip_base = Ip(122, 193),
       .style = TemplateStyle::kWebApi,
       .path = "/client/api.php",
       .post_body = true,
       .leaks = {{IdKind::kImei, HashMode::kNone, "imei", 1.0, 0.0},
                 {IdKind::kSimSerial, HashMode::kNone, "iccid", 0.90, 0.0},
                 {IdKind::kCarrier, HashMode::kNone, "operator", 1.0, 0.0}},
       .target_packets = 300,
       .target_apps = 12,
       .requires_phone_permission = true});

  // --- Benign content / API services ------------------------------------
  add({.name = "Gstatic",
       .domain = "gstatic.com",
       .hosts = {"t0.gstatic.com", "t1.gstatic.com", "csi.gstatic.com"},
       .ip_base = Ip(72, 14),
       .style = TemplateStyle::kContent,
       .path = "/images",
       .target_packets = 1387,
       .target_apps = 333});
  add({.name = "Google",
       .domain = "google.com",
       .hosts = {"www.google.com", "clients1.google.com"},
       .ip_base = Ip(142, 250),
       .style = TemplateStyle::kWebApi,
       .path = "/complete/search",
       .target_packets = 3604,
       .target_apps = 308});
  add({.name = "YahooJP",
       .domain = "yahoo.co.jp",
       .hosts = {"api.yahoo.co.jp", "srd.yahoo.co.jp"},
       .ip_base = Ip(124, 83),
       .style = TemplateStyle::kWebApi,
       .path = "/v1/search",
       .target_packets = 1756,
       .target_apps = 287});
  add({.name = "Ggpht",
       .domain = "ggpht.com",
       .hosts = {"lh3.ggpht.com", "lh4.ggpht.com"},
       .ip_base = Ip(64, 15),
       .style = TemplateStyle::kContent,
       .path = "/avatars",
       .target_packets = 940,
       .target_apps = 281});
  add({.name = "Naver",
       .domain = "naver.jp",
       .hosts = {"api.naver.jp", "dic.naver.jp"},
       .ip_base = Ip(125, 209),
       .style = TemplateStyle::kWebApi,
       .path = "/v1/app/lookup",
       .target_packets = 3390,
       .target_apps = 82});
  add({.name = "Rakuten",
       .domain = "rakuten.co.jp",
       .hosts = {"app.rakuten.co.jp"},
       .ip_base = Ip(133, 237),
       .style = TemplateStyle::kWebApi,
       .path = "/api/ichiba/item/search",
       .target_packets = 502,
       .target_apps = 56});
  add({.name = "FC2",
       .domain = "fc2.com",
       .hosts = {"blog-imgs.fc2.com"},
       .ip_base = Ip(208, 71),
       .style = TemplateStyle::kContent,
       .path = "/static",
       .target_packets = 163,
       .target_apps = 52});
  return c;
}

namespace {

struct LongTailTypeSpec {
  IdKind kind;
  HashMode hash;
  int total_packets;
  int num_hosts;
  int pool_size;  ///< distinct apps shared across this type's hosts
  bool requires_phone;
};

// Calibrated so that named services + long tail approximate Table III's
// per-type packet and destination counts (see DESIGN.md).
constexpr std::array<LongTailTypeSpec, 9> kLongTailSpecs = {{
    {IdKind::kAndroidId, HashMode::kNone, 250, 60, 8, false},
    {IdKind::kAndroidId, HashMode::kMd5, 300, 15, 40, false},
    {IdKind::kAndroidId, HashMode::kSha1, 104, 9, 12, false},
    {IdKind::kCarrier, HashMode::kNone, 230, 39, 20, false},
    {IdKind::kImei, HashMode::kNone, 418, 85, 30, true},
    {IdKind::kImei, HashMode::kMd5, 98, 12, 15, true},
    {IdKind::kImei, HashMode::kSha1, 171, 11, 12, true},
    {IdKind::kImsi, HashMode::kNone, 655, 22, 16, true},
    {IdKind::kSimSerial, HashMode::kNone, 99, 16, 13, true},
}};

constexpr std::array<std::string_view, 24> kWordsA = {
    "app",   "ad",    "mobi",  "track", "push",  "game",  "media", "smart",
    "net",   "click", "spot",  "tap",   "pixel", "reach", "hyper", "meta",
    "droid", "pocket", "cloud", "data",  "link",  "beam",  "nano",  "zen"};
constexpr std::array<std::string_view, 20> kWordsB = {
    "works", "box",   "lab",   "gate",  "zone",  "hub",  "cast", "flow",
    "base",  "sync",  "serve", "stats", "logic", "core", "grid", "ware",
    "press", "forge", "feed",  "mart"};
constexpr std::array<std::string_view, 6> kTlds = {"com",  "net", "info",
                                                   "mobi", "jp",  "co.jp"};
constexpr std::array<std::string_view, 8> kSubdomains = {
    "api", "ads", "sdk", "www", "app", "data", "mobile", "cdn"};

constexpr std::array<std::string_view, 10> kLeakParams = {
    "uid",  "device_id", "did", "u",   "token",
    "duid", "terminal",  "dev", "uniq", "id0"};

constexpr std::array<std::string_view, 8> kLeakPaths = {
    "/api/register",  "/ad/request", "/sdk/init",     "/v1/device",
    "/track/install", "/app/start",  "/data/collect", "/m/session"};

std::string MakeDomain(Rng* rng) {
  std::string d(kWordsA[rng->UniformInt(kWordsA.size())]);
  d += kWordsB[rng->UniformInt(kWordsB.size())];
  d += '.';
  d += kTlds[rng->UniformInt(kTlds.size())];
  return d;
}

std::string MakeHost(Rng* rng, const std::string& domain) {
  std::string h(kSubdomains[rng->UniformInt(kSubdomains.size())]);
  h += '.';
  h += domain;
  return h;
}

uint32_t RandomIpBase(Rng* rng) {
  // Public-ish /16: avoid 0, 10, 127, 192.168, 224+.
  uint32_t a = 11 + static_cast<uint32_t>(rng->UniformInt(200));
  if (a == 127) a = 128;
  uint32_t b = static_cast<uint32_t>(rng->UniformInt(256));
  return (a << 24) | (b << 16);
}

}  // namespace

std::vector<ServiceSpec> MakeLongTailLeakyServices(Rng* rng) {
  // Each sensitive type is carried by one shady "SDK": a shared request
  // template (path + parameter name) deployed across many small backend
  // families. A family is one registrable domain with up to three rotating
  // hosts. This mirrors how minor tracking SDKs fan out across white-label
  // backends — and it is what lets conjunction signatures generalize from a
  // sampled family to the rest of the type's destinations, the polymorphic
  // case §IV motivates.
  constexpr int kFamilyHosts = 3;
  std::vector<ServiceSpec> services;
  int pool_id = 0;
  for (const LongTailTypeSpec& spec : kLongTailSpecs) {
    // Per-type SDK template.
    std::string sdk_path(kLeakPaths[rng->UniformInt(kLeakPaths.size())]);
    std::string sdk_param(kLeakParams[rng->UniformInt(kLeakParams.size())]);
    TemplateStyle sdk_style = rng->Bernoulli(0.5) ? TemplateStyle::kAdRequest
                                                  : TemplateStyle::kWebApi;
    bool sdk_post =
        (sdk_style == TemplateStyle::kWebApi) && rng->Bernoulli(0.5);

    int families = (spec.num_hosts + kFamilyHosts - 1) / kFamilyHosts;
    int hosts_remaining = spec.num_hosts;
    int packets_remaining = spec.total_packets;
    for (int f = 0; f < families; ++f) {
      int fams_left = families - f;
      int nhosts = std::min(kFamilyHosts, hosts_remaining - (fams_left - 1));
      nhosts = std::max(1, nhosts);
      hosts_remaining -= nhosts;

      int base = packets_remaining / fams_left;
      int budget = base;
      if (fams_left > 1 && base > 1) {
        budget = base / 2 +
                 static_cast<int>(rng->UniformInt(static_cast<uint64_t>(base)));
      }
      // Every host needs at least one packet to register as a destination.
      budget = std::max(nhosts,
                        std::min(budget, packets_remaining - (fams_left - 1)));
      packets_remaining -= budget;

      ServiceSpec s;
      s.domain = MakeDomain(rng);
      s.name = "lt-" + s.domain;
      s.sdk_tag = "lt-sdk-" + std::to_string(pool_id);
      for (int h = 0; h < nhosts; ++h) {
        s.hosts.push_back(std::string(kSubdomains[static_cast<size_t>(h) %
                                                  kSubdomains.size()]) +
                          std::to_string(h + 1) + "." + s.domain);
      }
      s.ip_base = RandomIpBase(rng);
      s.style = sdk_style;
      s.post_body = sdk_post;
      s.path = sdk_path;
      s.host_per_packet = true;
      LeakField leak;
      leak.kind = spec.kind;
      leak.hash = spec.hash;
      leak.param = sdk_param;
      leak.probability = 1.0;
      leak.uppercase_fraction = 0.0;
      s.leaks = {leak};
      s.target_packets = budget;
      // 2-4 apps per family: with a single app, the app's publisher key
      // would be an invariant token and the family signature could not
      // generalize across the pool.
      s.target_apps = 2 + static_cast<int>(rng->UniformInt(3));
      s.requires_phone_permission = spec.requires_phone;
      s.app_pool_id = pool_id;
      s.app_pool_size = spec.pool_size;
      services.push_back(std::move(s));
    }
    ++pool_id;
  }
  return services;
}

ServiceSpec MakeObfuscatedModule() {
  ServiceSpec s;
  s.name = "ShadyTrack";
  s.domain = "shadytrack.cn";
  s.hosts = {"api.shadytrack.cn", "log.shadytrack.cn"};
  s.ip_base = Ip(117, 25);
  s.style = TemplateStyle::kWebApi;
  s.path = "/report/device";
  s.post_body = true;
  LeakField leak;
  leak.kind = IdKind::kImei;
  leak.hash = HashMode::kXor;
  leak.param = "enc";
  leak.probability = 1.0;
  leak.xor_key = std::string(kObfuscationSdkKey);
  s.leaks = {leak};
  s.target_packets = 400;
  s.target_apps = 15;
  s.requires_phone_permission = true;
  return s;
}

net::OrgRegistry BuildOrgRegistry(const std::vector<ServiceSpec>& services) {
  net::OrgRegistry registry;
  for (const ServiceSpec& svc : services) {
    std::string org = svc.name;
    // Google's ad and content properties are one allocation owner.
    if (svc.domain == "doubleclick.net" || svc.domain == "admob.com" ||
        svc.domain == "google-analytics.com" ||
        svc.domain == "googlesyndication.com" || svc.domain == "google.com" ||
        svc.domain == "gstatic.com" || svc.domain == "ggpht.com") {
      org = "Google";
    }
    // mediba and its ad arm share an owner.
    if (svc.domain == "mediba.jp" || svc.domain == "medibaad.com") {
      org = "mediba";
    }
    registry.Add(
        net::CidrPrefix{net::Ipv4Address(svc.ip_base), 16}, std::move(org));
  }
  return registry;
}

std::vector<ServiceSpec> MakeLongTailNormalServices(Rng* rng, size_t count) {
  std::vector<ServiceSpec> services;
  services.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ServiceSpec s;
    s.domain = MakeDomain(rng);
    s.name = "bg-" + s.domain + "-" + std::to_string(i);
    s.hosts = {MakeHost(rng, s.domain)};
    s.ip_base = RandomIpBase(rng);
    double style_draw = rng->UniformDouble();
    if (style_draw < 0.55) {
      s.style = TemplateStyle::kContent;
      s.path = "/assets";
    } else if (style_draw < 0.85) {
      s.style = TemplateStyle::kWebApi;
      s.path = "/api/v1/fetch";
    } else {
      s.style = TemplateStyle::kAnalytics;
      s.path = "/beacon";
    }
    s.uses_cookie = rng->Bernoulli(0.3);
    s.target_packets = 0;  // filled by the traffic generator's budget split
    s.target_apps = 0;     // assigned from leftover app destination capacity
    services.push_back(std::move(s));
  }
  return services;
}

}  // namespace leakdet::sim
