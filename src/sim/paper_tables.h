#ifndef LEAKDET_SIM_PAPER_TABLES_H_
#define LEAKDET_SIM_PAPER_TABLES_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "core/payload_check.h"

namespace leakdet::sim {

/// Table I — dangerous permission combinations over the 1,188 apps.
struct PaperTable1Row {
  bool internet;
  bool location;
  bool phone_state;
  bool contacts;
  int apps;
};
inline constexpr std::array<PaperTable1Row, 5> kPaperTable1 = {{
    {true, false, false, false, 302},
    {true, true, false, false, 329},
    {true, true, true, false, 153},
    {true, false, true, false, 148},
    {true, true, true, true, 23},
}};

/// Apps in the paper's corpus not covered by a Table I row (1,188 - 955).
/// We model them as INTERNET plus non-sensitive extras, since Figure 2 shows
/// every app reaching at least one network destination.
inline constexpr int kPaperTable1OtherApps = 233;

/// Table II — HTTP packet destinations (per-service packet and app counts).
struct PaperTable2Row {
  std::string_view domain;
  int packets;
  int apps;
};
inline constexpr std::array<PaperTable2Row, 26> kPaperTable2 = {{
    {"doubleclick.net", 5786, 407},
    {"admob.com", 1299, 401},
    {"google-analytics.com", 3098, 353},
    {"gstatic.com", 1387, 333},
    {"google.com", 3604, 308},
    {"yahoo.co.jp", 1756, 287},
    {"ggpht.com", 940, 281},
    {"googlesyndication.com", 938, 244},
    {"ad-maker.info", 3391, 195},
    {"nend.net", 1368, 192},
    {"mydas.mobi", 332, 164},
    {"amoad.com", 583, 116},
    {"flurry.com", 335, 119},
    {"microad.jp", 868, 103},
    {"adwhirl.com", 548, 102},
    {"i-mobile.co.jp", 3729, 100},
    {"adlantis.jp", 237, 98},
    {"naver.jp", 3390, 82},
    {"adimg.net", 315, 72},
    {"mbga.jp", 1048, 63},
    {"rakuten.co.jp", 502, 56},
    {"fc2.com", 163, 52},
    {"medibaad.com", 1162, 49},
    {"mediba.jp", 427, 48},
    {"mobclix.com", 260, 48},
    {"gree.jp", 228, 45},
}};

/// Table III — sensitive information mix.
struct PaperTable3Row {
  core::SensitiveType type;
  int packets;
  int apps;
  int destinations;
};
inline constexpr std::array<PaperTable3Row, 9> kPaperTable3 = {{
    {core::SensitiveType::kAndroidId, 7590, 21, 75},
    {core::SensitiveType::kAndroidIdMd5, 10058, 433, 21},
    {core::SensitiveType::kAndroidIdSha1, 1247, 47, 12},
    {core::SensitiveType::kCarrier, 2095, 135, 44},
    {core::SensitiveType::kImei, 3331, 171, 94},
    {core::SensitiveType::kImeiMd5, 692, 59, 15},
    {core::SensitiveType::kImeiSha1, 1062, 51, 13},
    {core::SensitiveType::kImsi, 655, 16, 22},
    {core::SensitiveType::kSimSerial, 369, 13, 18},
}};

/// Headline dataset statistics (§III, §V-A).
inline constexpr int kPaperTotalApps = 1188;
inline constexpr int kPaperTotalPackets = 107859;
inline constexpr int kPaperSensitivePackets = 23309;
inline constexpr int kPaperNormalPackets = 84550;

/// Figure 2 — destination-count distribution facts.
inline constexpr int kPaperAppsWithOneDest = 81;       // 7%
inline constexpr double kPaperFracUpTo10Dests = 0.74;  // 885 apps
inline constexpr double kPaperFracUpTo16Dests = 0.90;  // 1006 apps
inline constexpr double kPaperMeanDests = 7.9;
inline constexpr int kPaperMaxDests = 84;

/// Figure 4 — detection rates (percent) per sample size N.
struct PaperFig4Row {
  int n;
  double tp_pct;
  double fn_pct;
  double fp_pct;
};
inline constexpr std::array<PaperFig4Row, 5> kPaperFig4 = {{
    {100, 85.0, 15.0, 0.3},
    {200, 90.0, 8.0, 0.9},
    {300, 92.0, 7.0, 1.2},   // read from the figure (not tabulated in text)
    {400, 93.0, 6.0, 1.8},   // read from the figure (not tabulated in text)
    {500, 94.0, 5.0, 2.3},
}};

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_PAPER_TABLES_H_
