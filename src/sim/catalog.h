#ifndef LEAKDET_SIM_CATALOG_H_
#define LEAKDET_SIM_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "net/org_registry.h"
#include "util/rng.h"

namespace leakdet::sim {

/// Which device identifier a leak field transmits.
enum class IdKind { kAndroidId, kImei, kImsi, kSimSerial, kCarrier };

/// How the identifier is encoded on the wire. kXor is repeating-key XOR
/// with a per-SDK key shared across applications — the obfuscation case of
/// §VI (the ciphertext of a fixed identifier is invariant, so signatures
/// still work once the ground truth knows the key).
enum class HashMode { kNone, kMd5, kSha1, kXor };

/// Maps (kind, hash) to the Table III category. Carrier is never hashed.
core::SensitiveType ToSensitiveType(IdKind kind, HashMode hash);

/// One identifier-transmitting field of a service's request template.
struct LeakField {
  IdKind kind;
  HashMode hash = HashMode::kNone;
  std::string param;        ///< wire parameter name ("udid", "muid", ...)
  double probability = 1.0; ///< per-packet inclusion probability
  /// Fraction of transmissions that render hex digests in UPPERCASE.
  /// Real ad SDK populations mix cases across versions; mixed-case clusters
  /// are what produces the paper's template-only "verbose" signatures and
  /// its false-positive growth with N (§V-B, §VI).
  double uppercase_fraction = 0.0;
  /// When true, this field is only emitted in packets where the *previous*
  /// leak field in the service's list fired (correlated telemetry: e.g.
  /// i-mobile sends the hashed ID only inside its carrier-tagged beacons).
  bool only_with_previous = false;
  /// XOR key for HashMode::kXor (ignored otherwise).
  std::string xor_key;
};

/// Overall shape of a service's requests.
enum class TemplateStyle {
  kAdRequest,     ///< GET /ad path with SDK query params
  kAnalytics,     ///< GET or POST beacon with tracking params
  kContent,       ///< static content fetches (images, JS)
  kWebApi,        ///< POST JSON-ish API calls
  kGamePlatform,  ///< mobile gaming platform session calls
};

/// One destination service (an advertisement network, analytics provider,
/// content host, or Web API) with calibration targets from Table II.
struct ServiceSpec {
  std::string name;                 ///< "AdMob"
  std::string domain;               ///< registrable domain ("admob.com")
  /// Identity of the embedded SDK generating the requests. Services sharing
  /// an sdk_tag render identical template constants (version string, param
  /// layout) even across different destination domains. Empty = `name`.
  std::string sdk_tag;
  std::vector<std::string> hosts;   ///< concrete FQDNs apps connect to
  uint32_t ip_base;                 ///< /16 block base (host byte order)
  uint16_t port = 80;
  TemplateStyle style = TemplateStyle::kAdRequest;
  std::string path;                 ///< request path ("/ad/v3/req")
  bool post_body = false;           ///< parameters travel in a POST body
  bool uses_cookie = false;         ///< per-(app,service) session cookie
  /// Pick the destination host per packet (uniformly over `hosts`) instead
  /// of per app. Long-tail SDK families rotate across their backends.
  bool host_per_packet = false;
  std::vector<LeakField> leaks;
  int target_packets = 0;           ///< Table II "# Packets"
  int target_apps = 0;              ///< Table II "# Apps"
  bool requires_phone_permission = false;  ///< leaks need READ_PHONE_STATE
  /// Long-tail mini-services of one sensitive type share a small app pool
  /// (Table III shows e.g. IMSI spread over 22 destinations but only 16
  /// apps). -1 = no shared pool.
  int app_pool_id = -1;
  int app_pool_size = 0;
};

/// The 26 Table II services plus zqapk.com (named in §III-B), with leak
/// profiles calibrated so the generated trace approximates Table III.
std::vector<ServiceSpec> DefaultCatalog();

/// Synthesizes the long-tail *leaky* hosts Table III implies beyond the
/// named services (e.g. IMEI appears at 94 destinations). Each synthetic
/// mini-service gets 1 host, a small packet budget, its own parameter
/// naming, and an app pool shared across hosts of the same sensitive type.
std::vector<ServiceSpec> MakeLongTailLeakyServices(Rng* rng);

/// Synthesizes `count` benign long-tail hosts (CDNs, app backends) used to
/// fill each app's destination list and the packet total to paper scale.
std::vector<ServiceSpec> MakeLongTailNormalServices(Rng* rng, size_t count);

/// The default XOR key of the simulated obfuscating module.
inline constexpr std::string_view kObfuscationSdkKey = "zq2013key";

/// An extra advertisement module that XOR-obfuscates the IMEI with a fixed
/// SDK-wide key before transmission (§VI's obfuscation scenario). Not part
/// of the Table II calibration; enabled via
/// TrafficConfig::include_obfuscated_module.
ServiceSpec MakeObfuscatedModule();

/// Builds the WHOIS-style ownership registry for a service universe: each
/// service's /16 allocation is registered to its operating organization
/// (the service name; Google properties share one organization). This is
/// the verification oracle §VI suggests for the destination distance.
net::OrgRegistry BuildOrgRegistry(const std::vector<ServiceSpec>& services);

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_CATALOG_H_
