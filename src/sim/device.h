#ifndef LEAKDET_SIM_DEVICE_H_
#define LEAKDET_SIM_DEVICE_H_

#include <string>
#include <vector>

#include "core/payload_check.h"
#include "util/rng.h"

namespace leakdet::sim {

/// One simulated handset. The paper's experiment ran every application on a
/// single instrumented Galaxy Nexus S (Android 2.3.x) on a Japanese carrier;
/// the default profile mirrors that.
struct DeviceProfile {
  std::string android_id;  ///< 16 hex chars (Settings.Secure.ANDROID_ID)
  std::string imei;        ///< 15 digits with Luhn check digit
  std::string imsi;        ///< 15 digits (MCC+MNC+MSIN)
  std::string sim_serial;  ///< 19-digit ICCID
  std::string carrier;     ///< network operator name
  std::string model = "Nexus S";
  std::string os_version = "2.3.4";

  /// The token view the PayloadCheck oracle consumes.
  core::DeviceTokens ToTokens() const;
};

/// Japanese carrier names circa the paper's collection window.
const std::vector<std::string>& CarrierCatalog();

/// Generates a device with fresh identifiers on the given carrier
/// (defaults to the first catalog carrier, "NTT DOCOMO").
DeviceProfile MakeDevice(Rng* rng, const std::string& carrier = "");

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_DEVICE_H_
