#ifndef LEAKDET_SIM_DEVICE_H_
#define LEAKDET_SIM_DEVICE_H_

#include <string>
#include <vector>

#include "core/payload_check.h"
#include "util/rng.h"

namespace leakdet::sim {

/// One simulated handset. The paper's experiment ran every application on a
/// single instrumented Galaxy Nexus S (Android 2.3.x) on a Japanese carrier;
/// the default profile mirrors that.
struct DeviceProfile {
  std::string android_id;  ///< 16 hex chars (Settings.Secure.ANDROID_ID)
  std::string imei;        ///< 15 digits with Luhn check digit
  std::string imsi;        ///< 15 digits (MCC+MNC+MSIN)
  std::string sim_serial;  ///< 19-digit ICCID
  std::string carrier;     ///< network operator name
  std::string model = "Nexus S";
  std::string os_version = "2.3.4";

  /// The token view the PayloadCheck oracle consumes.
  core::DeviceTokens ToTokens() const;
};

/// Japanese carrier names circa the paper's collection window.
const std::vector<std::string>& CarrierCatalog();

/// Generates a device with fresh identifiers on the given carrier
/// (defaults to the first catalog carrier, "NTT DOCOMO").
DeviceProfile MakeDevice(Rng* rng, const std::string& carrier = "");

/// Fleet-scale device derivation: the device at `index` is generated from
/// its *own* seeded stream, mixed from (fleet_seed, index). Unlike drawing
/// devices off a shared Rng, the profile is independent of generation order
/// and of how many other devices exist — device N is the same whether the
/// fleet materializes 10 profiles or 10 million, and whether it is rendered
/// first or last (replay-stable). Distinct indices get independent streams,
/// so identifier values are device-unique, which is what makes K-anonymity
/// distinct-device counts meaningful. The carrier is drawn from the catalog
/// on the same per-device stream.
DeviceProfile MakeDeviceAt(uint64_t fleet_seed, uint64_t index);

/// The seed MakeDeviceAt uses for `index` (exposed so tests can verify the
/// per-device stream derivation and tooling can re-derive one device).
uint64_t DeviceStreamSeed(uint64_t fleet_seed, uint64_t index);

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_DEVICE_H_
