#ifndef LEAKDET_SIM_POPULATION_H_
#define LEAKDET_SIM_POPULATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/catalog.h"
#include "sim/permissions.h"
#include "util/rng.h"

namespace leakdet::sim {

/// One simulated application from the market sample.
struct App {
  uint32_t id = 0;
  std::string package;       ///< "jp.co.vendor.app123"
  std::string app_key;       ///< publisher key sent in ad/API requests
  PermissionSet permissions;
  double activity = 1.0;     ///< relative packet volume weight
  int dest_budget = 1;       ///< total distinct destinations (Fig. 2 draw)
  std::vector<size_t> services;          ///< indices into the leaky catalog
  std::vector<size_t> background_hosts;  ///< indices into the background pool
};

/// Population-shape knobs (defaults reproduce the paper's §III statistics).
struct PopulationConfig {
  /// Linear scale on the number of apps (1.0 = 1,188 apps).
  double app_scale = 1.0;
  /// Fraction of apps with exactly one destination (Fig. 2: 81/1188).
  double one_dest_fraction = 81.0 / 1188.0;
  /// Mean of the geometric tail added to the 2-destination floor; tuned so
  /// the overall mean is ~7.9 and P(D<=10) ~ 0.74 (Fig. 2).
  double extra_dest_mean = 6.3;
  /// Hard cap; the paper's maximum was 84 (an embedded-browser app).
  int max_dests = 84;
};

/// The generated market: apps with permissions (Table I), destination
/// budgets (Fig. 2), and service assignments (Table II app counts).
struct Population {
  std::vector<App> apps;

  /// Apps per Table I permission row, in row order
  /// {I, I+L, I+L+P, I+P, I+L+P+C, other}.
  std::vector<int> PermissionComboCounts() const;
};

/// Builds the app population and assigns catalog services and background
/// hosts to apps:
///  1. permission sets drawn to match Table I exactly (scaled);
///  2. per-app destination budgets drawn to match Fig. 2;
///  3. each catalog service assigned to ~target_apps eligible apps
///     (READ_PHONE_STATE required where the service leaks phone IDs),
///     weighted by remaining destination capacity;
///  4. leftover capacity filled with background hosts (Zipf popularity).
Population GeneratePopulation(Rng* rng,
                              const std::vector<ServiceSpec>& catalog,
                              const std::vector<ServiceSpec>& background,
                              const PopulationConfig& config = {});

}  // namespace leakdet::sim

#endif  // LEAKDET_SIM_POPULATION_H_
