#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace leakdet::sim {

Fleet::Fleet(const FleetConfig& config)
    : config_(config),
      device_sampler_(std::max<size_t>(1, config.num_devices),
                      config.device_skew) {
  // Mirror GenerateTrace's stream phase (device draw consumed one Next)
  // so the same market seed yields the same market either way.
  Rng rng(config_.market.seed);
  rng.Next();
  market_ = BuildMarket(config_.market, &rng);

  app_cdf_.reserve(market_.population.apps.size());
  double acc = 0.0;
  for (const App& app : market_.population.apps) {
    acc += app.activity;
    app_cdf_.push_back(acc);
  }
}

DeviceProfile Fleet::DeviceAt(uint64_t index) const {
  return MakeDeviceAt(config_.seed, index);
}

uint64_t Fleet::DeviceKey(uint64_t index) const {
  return DeviceStreamSeed(config_.seed, index);
}

LabeledPacket Fleet::RenderEvent(uint64_t device_index, uint32_t seq) const {
  // Pure (fleet seed, device, seq) derivation: the content of a device's
  // n-th packet never depends on what the rest of the fleet did.
  uint64_t device_stream = DeviceStreamSeed(config_.seed, device_index);
  Rng rng(DeviceStreamSeed(device_stream, seq));
  DeviceProfile device = MakeDeviceAt(config_.seed, device_index);

  // App draw by activity weight (binary search over the cumulative sums).
  double total = app_cdf_.empty() ? 0.0 : app_cdf_.back();
  size_t app_index = 0;
  if (total > 0.0) {
    double u = rng.UniformDouble() * total;
    app_index = static_cast<size_t>(
        std::lower_bound(app_cdf_.begin(), app_cdf_.end(), u) -
        app_cdf_.begin());
    if (app_index >= app_cdf_.size()) app_index = app_cdf_.size() - 1;
  }
  const App& app = market_.population.apps[app_index];

  // Destination draw: uniform over the app's assigned services and
  // background hosts (every app has at least one destination by
  // construction of the population).
  size_t ns = app.services.size();
  size_t nb = app.background_hosts.size();
  size_t svc_index;
  if (ns + nb == 0) {
    svc_index = market_.background_begin;  // degenerate; cannot happen
  } else {
    size_t pick = static_cast<size_t>(rng.UniformInt(ns + nb));
    svc_index = pick < ns ? app.services[pick]
                          : market_.background_begin +
                                app.background_hosts[pick - ns];
  }
  const ServiceSpec& svc = market_.services[svc_index];

  // Session cookies are per (device, app, service) and stable across the
  // device's whole packet stream — derived, not drawn, so packet N and
  // packet N+1000 of the same session share the value.
  auto cookie = [&](uint32_t app_id, uint32_t service_index) {
    uint64_t mix = DeviceStreamSeed(
        device_stream, (static_cast<uint64_t>(app_id) << 20) | service_index);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(mix));
    return std::string(buf);
  };
  return RenderServicePacket(svc, static_cast<uint32_t>(svc_index), app,
                             device, cookie, &rng);
}

Fleet::Stream::Stream(const Fleet* fleet, uint64_t salt)
    : fleet_(fleet),
      arrivals_(DeviceStreamSeed(fleet->config().seed ^ 0xF1EE7F1EE7ULL,
                                 salt)) {}

Fleet::Event Fleet::Stream::Next() {
  Event event;
  event.device_index = fleet_->device_sampler_.Sample(&arrivals_);
  double rate = fleet_->config().events_per_second;
  if (rate <= 0.0) rate = 1.0;
  // Exponential inter-arrival (Poisson fleet process). 1-u keeps the
  // argument of log strictly positive.
  now_s_ += -std::log(1.0 - arrivals_.UniformDouble()) / rate;
  event.time_s = now_s_;
  uint32_t seq = device_seq_[event.device_index]++;
  event.packet = fleet_->RenderEvent(event.device_index, seq);
  ++events_;
  return event;
}

}  // namespace leakdet::sim
