// AVX2 prefilter scan kernel: 32 window positions per iteration, 8 hashes
// per vector op. Compiled for real only when CMake enabled the -mavx2
// translation unit (LEAKDET_NATIVE, which defines LEAKDET_PREFILTER_AVX2_TU
// for exactly this file); every other build gets the stub below and runtime
// dispatch settles on SSE2/scalar. Even when compiled in, callers gate on
// prefilter::Avx2Available(), which also checks CPUID — the binary stays
// portable to non-AVX2 hosts.

#include "prefilter/scan_kernels.h"

#if defined(LEAKDET_PREFILTER_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

namespace leakdet::prefilter::internal {

namespace {

/// Lane-wise HashWindow (must stay bit-identical to the scalar version).
inline __m256i HashVec(__m256i w) {
  const __m256i c1 = _mm256_set1_epi32(static_cast<int>(0x9E3779B1u));
  const __m256i c2 = _mm256_set1_epi32(static_cast<int>(0x85EBCA6Bu));
  __m256i h = _mm256_mullo_epi32(w, c1);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 15));
  h = _mm256_mullo_epi32(h, c2);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 13));
  return h;
}

}  // namespace

bool ScanAvx2(const Tables& t, const uint8_t* data, size_t len,
              uint64_t* bits) {
  size_t i = 0;
  // Each iteration covers positions [i, i+32): four phase loads, each a
  // 32-byte unaligned load whose eight uint32 lanes are the windows at
  // stride 4 (phase p reads up to data[i+p+31], hence the +3 guard). The
  // bloom screen runs vectorized too — a gather pulls each lane's bloom
  // word, srlv isolates its bit, and one movemask names the surviving
  // lanes, so the common all-clean case costs no per-position scalar work.
  if (len >= 32 + 3) {
    const __m256i mask16 = _mm256_set1_epi32(0xFFFF);
    const __m256i mask31 = _mm256_set1_epi32(31);
    const __m256i one = _mm256_set1_epi32(1);
    alignas(32) uint32_t windows[8];
    alignas(32) uint32_t hashes[8];
    for (; i + 32 + 3 <= len; i += 32) {
      for (size_t phase = 0; phase < 4; ++phase) {
        __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(data + i + phase));
        __m256i h = HashVec(w);
        // Lane-wise BloomTest: bit = h & 0xFFFF; bloom32[bit>>5] >> (bit&31).
        __m256i bit = _mm256_and_si256(h, mask16);
        __m256i word = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(t.bloom),
            _mm256_srli_epi32(bit, 5), 4);
        __m256i hit = _mm256_and_si256(
            _mm256_srlv_epi32(word, _mm256_and_si256(bit, mask31)), one);
        uint32_t survivors = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(hit,
                                                   _mm256_setzero_si256()))));
        if (survivors == 0) continue;
        _mm256_store_si256(reinterpret_cast<__m256i*>(windows), w);
        _mm256_store_si256(reinterpret_cast<__m256i*>(hashes), h);
        do {
          unsigned k = static_cast<unsigned>(__builtin_ctz(survivors));
          survivors &= survivors - 1;
          ProbeGroupSse2(t, hashes[k], windows[k], bits);
        } while (survivors != 0);
      }
    }
  }
  for (; i + 4 <= len; ++i) {
    uint32_t window = LoadWindow(data + i);
    uint32_t hash = HashWindow(window);
    if (BloomTest(t.bloom, hash)) ProbeGroupSse2(t, hash, window, bits);
  }
  return true;
}

bool HaveAvx2Kernel() { return true; }

}  // namespace leakdet::prefilter::internal

#else  // stub: the -mavx2 TU was not enabled (or the compiler lacks AVX2)

namespace leakdet::prefilter::internal {

bool ScanAvx2(const Tables&, const uint8_t*, size_t, uint64_t*) {
  return false;
}

bool HaveAvx2Kernel() { return false; }

}  // namespace leakdet::prefilter::internal

#endif  // LEAKDET_PREFILTER_AVX2_TU && __AVX2__
