#ifndef LEAKDET_PREFILTER_PREFILTER_H_
#define LEAKDET_PREFILTER_PREFILTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace leakdet::prefilter {

/// Which scan kernel to run. kAuto resolves through Resolve(): the
/// LEAKDET_PREFILTER environment variable first, then the best kernel the
/// CPU (and build) supports. The request is a ceiling, not a promise — a
/// kAvx2 request on a machine without AVX2 degrades to SSE2, then scalar.
enum class Mode : uint8_t {
  kAuto = 0,  ///< env var, else best available
  kOff,       ///< bypass the prefilter entirely (every packet hits the DFA)
  kScalar,    ///< portable byte-at-a-time kernel
  kSse2,      ///< 16-wide group probe + 4-lane window hashing
  kAvx2,      ///< 32-wide window hashing (needs the -mavx2 TU, see CMake)
};

/// Parses "auto" | "off" | "scalar" | "sse2" | "avx2" | "simd" ("simd" =
/// best vector kernel available, never scalar-by-choice). Returns false on
/// unknown text and leaves *mode untouched.
bool ParseMode(std::string_view text, Mode* mode);

/// Human-readable kernel name ("avx2", "scalar", ...).
const char* ModeName(Mode mode);

/// True iff the AVX2 kernel was compiled in (LEAKDET_NATIVE) *and* the CPU
/// reports AVX2. Sse2Available() is true on any x86-64 build.
bool Avx2Available();
bool Sse2Available();

/// Collapses a requested mode to the concrete kernel Scan will run:
/// kAuto consults $LEAKDET_PREFILTER (unset/empty/"auto" = best available),
/// then kAvx2/kSse2 degrade to the next supported tier. The result is one
/// of kOff, kScalar, kSse2, kAvx2.
Mode Resolve(Mode requested);

struct PrefilterOptions {
  /// Tokens shorter than this can't anchor a 4-byte window and are skipped
  /// during rare-token selection (must be >= 4; the window size is fixed).
  size_t min_token_len = 4;
  /// Corpus frequency of a token — lower is rarer; the selector picks the
  /// minimum per signature. When unset, the cross-signature document
  /// frequency (how many signatures contain the token) stands in for corpus
  /// frequency: the serving layer never sees the training corpus, and a
  /// token shared by many signatures is exactly the kind of common
  /// boilerplate ("HTTP/1.1", "imei=") that makes a poor rare anchor.
  std::function<uint64_t(std::string_view)> token_frequency;
};

/// Per-thread reusable state for Scan (mirrors match::MatchScratch: owning
/// one per worker keeps the hot path allocation-free after warm-up).
struct ScanScratch {
  /// Candidate bitmap, one bit per signature index, little-endian words.
  std::vector<uint64_t> bits;
};

/// SIMD multi-pattern prefilter over one rare token per conjunction
/// signature (Kuzuno & Tonami's signatures are conjunctions of rare literal
/// tokens, so one missing token disproves the whole signature).
///
/// Build time: per signature, pick the rarest token of length >= 4 and
/// insert the hash of its first 4 bytes into (a) a 64 Kbit bloom screen and
/// (b) a bucketed hash table of 16-slot groups (byte tags + exact 4-byte
/// windows + CSR signature lists) probed with one SIMD compare per group —
/// the SimdHash group-probe idiom. Signatures with no usable token are
/// "always candidates": their bit is pre-set on every scan, so the filter
/// admits false positives but never false negatives.
///
/// Scan time: slide a 4-byte window over the payload; windows are hashed in
/// SIMD batches (32/AVX2, 16/SSE2), screened against the bloom, and only
/// bloom survivors probe the table. A payload containing a signature's
/// selected token always sets that signature's bit, because every
/// occurrence of the token starts with its first 4 bytes.
///
/// Thread safety: immutable after Build; share one instance across any
/// number of threads, each with its own ScanScratch.
class Prefilter {
 public:
  Prefilter() = default;

  /// `sig_tokens[i]` is the token list of signature i (empty conjunctions
  /// get no bit: they never match, mirroring the exact matcher).
  static Prefilter Build(const std::vector<std::vector<std::string>>& sig_tokens,
                         const PrefilterOptions& options = {});

  /// Fills `scratch->bits` with the candidate bitmap for `payload` using
  /// kernel `mode` (pass the value Resolve() gave you; kOff and kAuto scan
  /// with the build-time resolved default). Returns true iff any candidate
  /// bit is set — false means no signature can match `payload` and the DFA
  /// can be skipped entirely.
  bool Scan(std::string_view payload, ScanScratch* scratch,
            Mode mode = Mode::kAuto) const;

  /// True iff signature `sig` is marked candidate in `scratch` (helper for
  /// tests and the restricted matcher).
  static bool IsCandidate(const ScanScratch& scratch, size_t sig) {
    return (scratch.bits[sig >> 6] >> (sig & 63)) & 1;
  }

  size_t num_signatures() const { return num_signatures_; }
  /// Distinct 4-byte windows in the table.
  size_t num_windows() const { return num_windows_; }
  /// Signatures whose bit is pre-set on every scan.
  size_t num_always_candidates() const { return num_always_; }
  /// The rare token selected for signature `sig` ("" if it is an
  /// always-candidate or has no tokens).
  const std::string& selected_token(size_t sig) const {
    return selected_[sig];
  }
  /// The kernel kAuto resolves to for this process (diagnostics).
  Mode default_mode() const { return default_mode_; }
  /// Table footprint in bytes (capacity planning / statusz).
  size_t table_bytes() const;
  size_t num_buckets() const { return bucket_mask_ == 0 ? 0 : bucket_mask_ + 1; }

 private:
  friend struct PrefilterTables;

  size_t num_signatures_ = 0;
  size_t num_windows_ = 0;
  size_t num_always_ = 0;
  uint32_t bucket_mask_ = 0;  ///< buckets - 1; 0 = empty table
  Mode default_mode_ = Mode::kScalar;
  std::vector<std::string> selected_;   ///< per-sig rare token ("" = none)
  std::vector<uint64_t> always_mask_;   ///< pre-set candidate words
  std::vector<uint8_t> bloom_;          ///< 8 KiB bit screen over window hashes
  std::vector<uint8_t> tags_;           ///< per-slot 1-byte tag
  std::vector<uint16_t> used_;          ///< per-bucket occupancy bitmask
  std::vector<uint8_t> overflow_;       ///< bucket overflowed into successor
  std::vector<uint32_t> windows_;       ///< per-slot exact 4-byte window
  std::vector<uint32_t> range_lo_;      ///< per-slot CSR begin into sig_ids_
  std::vector<uint32_t> range_hi_;      ///< per-slot CSR end
  std::vector<uint32_t> sig_ids_;       ///< CSR storage: signatures per window
};

}  // namespace leakdet::prefilter

#endif  // LEAKDET_PREFILTER_PREFILTER_H_
