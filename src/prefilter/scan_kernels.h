#ifndef LEAKDET_PREFILTER_SCAN_KERNELS_H_
#define LEAKDET_PREFILTER_SCAN_KERNELS_H_

// Internal contract between Prefilter::Scan and its per-ISA kernels. Each
// kernel walks every 4-byte window of the payload, screens its hash against
// the bloom bit array, and marks the signatures of table-confirmed windows
// in the candidate bitmap. Kernels differ only in how many window hashes
// they compute per step; the bloom test and group probe are shared, so all
// three produce bit-identical bitmaps (asserted by tests/prefilter_test.cc
// and the differential fuzz target).

#include <cstdint>
#include <cstring>

namespace leakdet::prefilter::internal {

/// Slots per bucket: one 16-byte tag row = one SSE2 compare per probe.
inline constexpr size_t kGroupSize = 16;
/// Bloom screen size: 64 Kbit = 8 KiB, L1-resident, indexed by the low 16
/// hash bits. With W distinct windows the screen passes ~W/65536 of random
/// window positions — under 2% even at 1000 signatures.
inline constexpr size_t kBloomBytes = 8192;

/// Borrowed, immutable view of the Prefilter's tables (valid for the
/// lifetime of the owning Prefilter).
struct Tables {
  const uint8_t* bloom;
  const uint8_t* tags;        ///< [bucket * kGroupSize + slot]
  const uint16_t* used;       ///< per-bucket occupancy bitmask
  const uint8_t* overflow;    ///< per-bucket "insertion spilled past me"
  const uint32_t* windows;    ///< per-slot exact window value
  const uint32_t* range_lo;   ///< per-slot CSR begin into sig_ids
  const uint32_t* range_hi;   ///< per-slot CSR end
  const uint32_t* sig_ids;
  uint32_t bucket_mask;
};

/// 4 payload bytes as a little-endian word (memcpy compiles to one load).
inline uint32_t LoadWindow(const uint8_t* p) {
  uint32_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// Multiply-xorshift mix of a window. Every operation has a 128/256-bit
/// integer equivalent (mullo/srli/xor), so the SIMD kernels compute the
/// exact same function lane-wise. Bit usage: [0,16) bloom index and bucket,
/// [16,24) tag. Bucket and bloom bits may overlap — correctness comes from
/// the exact window compare, the shared low bits just correlate which
/// bucket a bloom survivor probes.
inline uint32_t HashWindow(uint32_t w) {
  uint32_t h = w * 0x9E3779B1u;
  h ^= h >> 15;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  return h;
}

inline bool BloomTest(const uint8_t* bloom, uint32_t hash) {
  uint32_t bit = hash & 0xFFFFu;
  return (bloom[bit >> 3] >> (bit & 7)) & 1;
}

inline uint8_t TagOf(uint32_t hash) {
  return static_cast<uint8_t>(hash >> 16);
}

inline void MarkSignatures(const Tables& t, size_t slot, uint64_t* bits) {
  for (uint32_t i = t.range_lo[slot]; i < t.range_hi[slot]; ++i) {
    uint32_t sig = t.sig_ids[i];
    bits[sig >> 6] |= uint64_t{1} << (sig & 63);
  }
}

/// Scalar bucket probe: walk the occupancy mask, compare tags then exact
/// windows, follow the overflow chain. The SIMD kernels use the group-probe
/// version in scan_sse2.cc instead (one cmpeq over the 16-byte tag row).
inline void ProbeScalar(const Tables& t, uint32_t hash, uint32_t window,
                        uint64_t* bits) {
  uint8_t tag = TagOf(hash);
  uint32_t bucket = hash & t.bucket_mask;
  while (true) {
    uint16_t occupied = t.used[bucket];
    while (occupied != 0) {
      unsigned s = static_cast<unsigned>(__builtin_ctz(occupied));
      occupied &= static_cast<uint16_t>(occupied - 1);
      size_t slot = bucket * kGroupSize + s;
      if (t.tags[slot] == tag && t.windows[slot] == window) {
        MarkSignatures(t, slot, bits);
      }
    }
    if (!t.overflow[bucket]) return;
    bucket = (bucket + 1) & t.bucket_mask;
  }
}

#if defined(__SSE2__)
}  // namespace leakdet::prefilter::internal
#include <emmintrin.h>
namespace leakdet::prefilter::internal {

/// The SimdHash group-probe idiom: one 16-byte load + one cmpeq compares a
/// probe tag against every slot of the bucket at once; the movemask (ANDed
/// with the occupancy bits) enumerates tag hits, each confirmed by the
/// exact 4-byte window before its signatures are marked. Shared by the SSE2
/// and AVX2 kernels (an -mavx2 TU implies __SSE2__).
inline void ProbeGroupSse2(const Tables& t, uint32_t hash, uint32_t window,
                           uint64_t* bits) {
  const __m128i tag =
      _mm_set1_epi8(static_cast<char>(static_cast<signed char>(TagOf(hash))));
  uint32_t bucket = hash & t.bucket_mask;
  while (true) {
    __m128i tags = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(t.tags + bucket * kGroupSize));
    uint32_t m =
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(tags, tag))) &
        t.used[bucket];
    while (m != 0) {
      unsigned s = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      size_t slot = bucket * kGroupSize + s;
      if (t.windows[slot] == window) MarkSignatures(t, slot, bits);
    }
    if (!t.overflow[bucket]) return;
    bucket = (bucket + 1) & t.bucket_mask;
  }
}
#endif  // __SSE2__

/// Portable kernel (always available).
void ScanScalar(const Tables& t, const uint8_t* data, size_t len,
                uint64_t* bits);

/// SSE2 kernel (x86-64 baseline). Returns false if this build has no SSE2,
/// in which case the caller falls back to ScanScalar.
bool ScanSse2(const Tables& t, const uint8_t* data, size_t len,
              uint64_t* bits);
bool HaveSse2Kernel();

/// AVX2 kernel. Compiled for real only when the build enabled the -mavx2
/// translation unit (LEAKDET_NATIVE); otherwise a stub that returns false.
/// Callers must also check CPU support (prefilter::Avx2Available) — the TU
/// being present does not mean the host can run it.
bool ScanAvx2(const Tables& t, const uint8_t* data, size_t len,
              uint64_t* bits);
bool HaveAvx2Kernel();

}  // namespace leakdet::prefilter::internal

#endif  // LEAKDET_PREFILTER_SCAN_KERNELS_H_
