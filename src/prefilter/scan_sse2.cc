// SSE2 prefilter scan kernel: 16 window positions per iteration. SSE2 is
// the x86-64 baseline, so this TU needs no special compile flags — on other
// architectures it degrades to a stub and the scalar kernel runs.

#include "prefilter/scan_kernels.h"

#if defined(__SSE2__)

namespace leakdet::prefilter::internal {

namespace {

/// 32x32 -> low-32 multiply using only SSE2 (_mm_mullo_epi32 is SSE4.1):
/// widen-multiply the even and odd lanes separately and re-interleave.
inline __m128i MulLo32(__m128i a, __m128i b) {
  __m128i even = _mm_mul_epu32(a, b);
  __m128i odd = _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

/// Lane-wise HashWindow (must stay bit-identical to the scalar version).
inline __m128i HashVec(__m128i w) {
  const __m128i c1 = _mm_set1_epi32(static_cast<int>(0x9E3779B1u));
  const __m128i c2 = _mm_set1_epi32(static_cast<int>(0x85EBCA6Bu));
  __m128i h = MulLo32(w, c1);
  h = _mm_xor_si128(h, _mm_srli_epi32(h, 15));
  h = MulLo32(h, c2);
  h = _mm_xor_si128(h, _mm_srli_epi32(h, 13));
  return h;
}

}  // namespace

bool ScanSse2(const Tables& t, const uint8_t* data, size_t len,
              uint64_t* bits) {
  size_t i = 0;
  // Each iteration covers positions [i, i+16): four phase loads, each a
  // 16-byte unaligned load whose four uint32 lanes are the windows at
  // stride 4 (phase p reads up to data[i+p+15], hence the +3 guard).
  if (len >= 16 + 3) {
    alignas(16) uint32_t windows[16];
    alignas(16) uint32_t hashes[16];
    for (; i + 16 + 3 <= len; i += 16) {
      for (size_t phase = 0; phase < 4; ++phase) {
        __m128i w = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(data + i + phase));
        _mm_store_si128(reinterpret_cast<__m128i*>(windows + 4 * phase), w);
        _mm_store_si128(reinterpret_cast<__m128i*>(hashes + 4 * phase),
                        HashVec(w));
      }
      for (size_t k = 0; k < 16; ++k) {
        if (BloomTest(t.bloom, hashes[k])) {
          ProbeGroupSse2(t, hashes[k], windows[k], bits);
        }
      }
    }
  }
  for (; i + 4 <= len; ++i) {
    uint32_t window = LoadWindow(data + i);
    uint32_t hash = HashWindow(window);
    if (BloomTest(t.bloom, hash)) ProbeGroupSse2(t, hash, window, bits);
  }
  return true;
}

bool HaveSse2Kernel() { return true; }

}  // namespace leakdet::prefilter::internal

#else  // !__SSE2__

namespace leakdet::prefilter::internal {

bool ScanSse2(const Tables&, const uint8_t*, size_t, uint64_t*) {
  return false;
}

bool HaveSse2Kernel() { return false; }

}  // namespace leakdet::prefilter::internal

#endif  // __SSE2__
