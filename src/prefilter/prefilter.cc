#include "prefilter/prefilter.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "prefilter/scan_kernels.h"

namespace leakdet::prefilter {

namespace {

using internal::kBloomBytes;
using internal::kGroupSize;

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Mode BestAvailable() {
  if (Avx2Available()) return Mode::kAvx2;
  if (Sse2Available()) return Mode::kSse2;
  return Mode::kScalar;
}

/// $LEAKDET_PREFILTER as a mode, or kAuto when unset/empty/unparseable
/// (read fresh each call so tests and tools can flip it at runtime; Resolve
/// is called at gateway construction, never per packet).
Mode EnvMode() {
  const char* env = std::getenv("LEAKDET_PREFILTER");
  if (env == nullptr || *env == '\0') return Mode::kAuto;
  Mode mode = Mode::kAuto;
  ParseMode(env, &mode);
  return mode;
}

}  // namespace

bool ParseMode(std::string_view text, Mode* mode) {
  if (text == "auto") {
    *mode = Mode::kAuto;
  } else if (text == "off") {
    *mode = Mode::kOff;
  } else if (text == "scalar") {
    *mode = Mode::kScalar;
  } else if (text == "sse2") {
    *mode = Mode::kSse2;
  } else if (text == "avx2" || text == "simd") {
    // "simd" asks for the best vector kernel; requesting kAvx2 degrades
    // through Resolve() to SSE2 (then scalar) when unavailable.
    *mode = Mode::kAvx2;
  } else {
    return false;
  }
  return true;
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kAuto:
      return "auto";
    case Mode::kOff:
      return "off";
    case Mode::kScalar:
      return "scalar";
    case Mode::kSse2:
      return "sse2";
    case Mode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Available() {
  return internal::HaveAvx2Kernel() && CpuHasAvx2();
}

bool Sse2Available() { return internal::HaveSse2Kernel(); }

Mode Resolve(Mode requested) {
  if (requested == Mode::kAuto) {
    Mode env = EnvMode();
    requested = env == Mode::kAuto ? BestAvailable() : env;
  }
  if (requested == Mode::kAvx2 && !Avx2Available()) requested = Mode::kSse2;
  if (requested == Mode::kSse2 && !Sse2Available()) requested = Mode::kScalar;
  return requested;
}

Prefilter Prefilter::Build(
    const std::vector<std::vector<std::string>>& sig_tokens,
    const PrefilterOptions& options) {
  Prefilter pf;
  pf.num_signatures_ = sig_tokens.size();
  pf.default_mode_ = Resolve(Mode::kAuto);
  pf.selected_.assign(sig_tokens.size(), std::string());
  pf.always_mask_.assign((sig_tokens.size() + 63) / 64, 0);

  const size_t min_len = std::max<size_t>(options.min_token_len, 4);

  // Document frequency of every token across signatures — the standing
  // proxy for corpus frequency when the caller has none (see
  // PrefilterOptions::token_frequency).
  std::unordered_map<std::string_view, uint64_t> doc_freq;
  for (const auto& tokens : sig_tokens) {
    for (const std::string& tok : tokens) ++doc_freq[tok];
  }
  auto frequency = [&](const std::string& tok) -> uint64_t {
    if (options.token_frequency) return options.token_frequency(tok);
    return doc_freq[std::string_view(tok)];
  };

  // Rare-token selection: per signature the (frequency, -length, bytes)
  // minimum among tokens long enough to anchor a window. Deterministic so
  // identical feeds compile to identical prefilters on every node.
  std::map<uint32_t, std::vector<uint32_t>> window_sigs;  // ordered = stable
  for (size_t s = 0; s < sig_tokens.size(); ++s) {
    const std::vector<std::string>& tokens = sig_tokens[s];
    if (tokens.empty()) continue;  // empty conjunctions never match: no bit
    const std::string* best = nullptr;
    uint64_t best_freq = 0;
    for (const std::string& tok : tokens) {
      if (tok.size() < min_len) continue;
      uint64_t freq = frequency(tok);
      if (best == nullptr || freq < best_freq ||
          (freq == best_freq &&
           (tok.size() > best->size() ||
            (tok.size() == best->size() && tok < *best)))) {
        best = &tok;
        best_freq = freq;
      }
    }
    if (best == nullptr) {
      // No token long enough to anchor: the signature must survive every
      // scan, or a short-token signature could be silently disabled.
      pf.always_mask_[s >> 6] |= uint64_t{1} << (s & 63);
      ++pf.num_always_;
      continue;
    }
    pf.selected_[s] = *best;
    window_sigs[internal::LoadWindow(
                    reinterpret_cast<const uint8_t*>(best->data()))]
        .push_back(static_cast<uint32_t>(s));
  }

  pf.num_windows_ = window_sigs.size();
  if (pf.num_windows_ == 0) return pf;

  // Table sizing: 16-slot buckets at <= 50% load. The hash contributes 16
  // bucket bits, so cap at 65536 buckets (1M windows before load creeps up
  // — far beyond any real signature feed).
  size_t want_buckets = (pf.num_windows_ * 2 + kGroupSize - 1) / kGroupSize;
  size_t buckets = 4;
  while (buckets < want_buckets) buckets *= 2;
  buckets = std::min<size_t>(buckets, 65536);
  pf.bucket_mask_ = static_cast<uint32_t>(buckets - 1);

  pf.bloom_.assign(kBloomBytes, 0);
  pf.tags_.assign(buckets * kGroupSize, 0);
  pf.used_.assign(buckets, 0);
  pf.overflow_.assign(buckets, 0);
  pf.windows_.assign(buckets * kGroupSize, 0);
  pf.range_lo_.assign(buckets * kGroupSize, 0);
  pf.range_hi_.assign(buckets * kGroupSize, 0);

  for (const auto& [window, sigs] : window_sigs) {
    uint32_t hash = internal::HashWindow(window);
    uint32_t bloom_bit = hash & 0xFFFFu;
    pf.bloom_[bloom_bit >> 3] |= static_cast<uint8_t>(1u << (bloom_bit & 7));

    uint32_t range_lo = static_cast<uint32_t>(pf.sig_ids_.size());
    pf.sig_ids_.insert(pf.sig_ids_.end(), sigs.begin(), sigs.end());
    uint32_t range_hi = static_cast<uint32_t>(pf.sig_ids_.size());

    // First-fit into the hash bucket, spilling linearly; every bucket we
    // spill past records the overflow so probes know to keep walking.
    uint32_t bucket = hash & pf.bucket_mask_;
    while (pf.used_[bucket] == 0xFFFF) {
      pf.overflow_[bucket] = 1;
      bucket = (bucket + 1) & pf.bucket_mask_;
    }
    unsigned s = static_cast<unsigned>(
        __builtin_ctz(static_cast<uint16_t>(~pf.used_[bucket])));
    pf.used_[bucket] = static_cast<uint16_t>(pf.used_[bucket] | (1u << s));
    size_t slot = bucket * kGroupSize + s;
    pf.tags_[slot] = internal::TagOf(hash);
    pf.windows_[slot] = window;
    pf.range_lo_[slot] = range_lo;
    pf.range_hi_[slot] = range_hi;
  }
  return pf;
}

size_t Prefilter::table_bytes() const {
  return bloom_.size() + tags_.size() + overflow_.size() +
         used_.size() * sizeof(uint16_t) +
         (windows_.size() + range_lo_.size() + range_hi_.size() +
          sig_ids_.size()) *
             sizeof(uint32_t) +
         always_mask_.size() * sizeof(uint64_t);
}

bool Prefilter::Scan(std::string_view payload, ScanScratch* scratch,
                     Mode mode) const {
  const size_t words = (num_signatures_ + 63) / 64;
  scratch->bits.assign(words, 0);
  if (num_signatures_ == 0) return false;
  for (size_t i = 0; i < words; ++i) scratch->bits[i] = always_mask_[i];

  if (num_windows_ != 0 && payload.size() >= 4) {
    internal::Tables t;
    t.bloom = bloom_.data();
    t.tags = tags_.data();
    t.used = used_.data();
    t.overflow = overflow_.data();
    t.windows = windows_.data();
    t.range_lo = range_lo_.data();
    t.range_hi = range_hi_.data();
    t.sig_ids = sig_ids_.data();
    t.bucket_mask = bucket_mask_;
    const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());

    Mode run = mode == Mode::kAuto || mode == Mode::kOff ? default_mode_ : mode;
    bool done = false;
    if (run == Mode::kAvx2) {
      done = internal::ScanAvx2(t, data, payload.size(), scratch->bits.data());
      if (!done) run = Mode::kSse2;
    }
    if (!done && run == Mode::kSse2) {
      done = internal::ScanSse2(t, data, payload.size(), scratch->bits.data());
    }
    if (!done) {
      internal::ScanScalar(t, data, payload.size(), scratch->bits.data());
    }
  }

  uint64_t any = 0;
  for (uint64_t word : scratch->bits) any |= word;
  return any != 0;
}

namespace internal {

void ScanScalar(const Tables& t, const uint8_t* data, size_t len,
                uint64_t* bits) {
  for (size_t i = 0; i + 4 <= len; ++i) {
    uint32_t window = LoadWindow(data + i);
    uint32_t hash = HashWindow(window);
    if (BloomTest(t.bloom, hash)) ProbeScalar(t, hash, window, bits);
  }
}

}  // namespace internal

}  // namespace leakdet::prefilter
