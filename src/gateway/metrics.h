#ifndef LEAKDET_GATEWAY_METRICS_H_
#define LEAKDET_GATEWAY_METRICS_H_

#include "obs/metrics.h"

namespace leakdet::gateway {

/// Compatibility aliases: the metrics primitives grew up into the
/// process-wide `src/obs` library (Gauge, labeled families, ScopedTimer,
/// Prometheus exposition, Registry::Default()). Existing gateway code and
/// tests keep using these names; new code should include "obs/metrics.h"
/// directly.
using Counter = obs::Counter;
using Gauge = obs::Gauge;
using Histogram = obs::Histogram;
using MetricsRegistry = obs::Registry;

}  // namespace leakdet::gateway

#endif  // LEAKDET_GATEWAY_METRICS_H_
