#ifndef LEAKDET_GATEWAY_METRICS_H_
#define LEAKDET_GATEWAY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace leakdet::gateway {

/// A monotonically increasing counter. Inc/Value are lock-free atomics, so
/// instrumenting the gateway hot path costs one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A fixed-bucket base-2 exponential histogram for latency-style values
/// (nanoseconds). Bucket i counts observations in [2^i, 2^(i+1)), bucket 0
/// additionally absorbs 0; the last bucket absorbs everything above. All
/// operations are lock-free; Observe is two relaxed fetch_adds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  ///< up to ~2^40 ns ≈ 18 min

  void Observe(uint64_t value);

  /// A consistent-enough copy for reporting (buckets are read relaxed;
  /// concurrent observers may be torn across buckets by ±1 — fine for
  /// monitoring output, never used for control decisions).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const;
    /// Upper edge of the bucket containing quantile `q` in [0,1]
    /// (conservative: reports the bucket boundary, not an interpolation).
    uint64_t Quantile(double q) const;
  };
  Snapshot Take() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Owner and namespace of every gateway metric. Registration (name lookup)
/// takes a mutex; the returned Counter*/Histogram* stay valid for the
/// registry's lifetime and are meant to be cached by the instrumented code,
/// so the mutex is never on a per-packet path.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first use.
  Histogram* GetHistogram(const std::string& name);

  /// Flat text rendering of every metric, sorted by name — counters as
  /// `name value`, histograms as `name count=N sum=S mean=M p50=.. p99=..`.
  /// The loadgen prints this as its end-of-run report.
  std::string TextDump() const;

 private:
  mutable std::mutex mu_;
  // Node-stable storage: pointers handed out must survive rehashing.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace leakdet::gateway

#endif  // LEAKDET_GATEWAY_METRICS_H_
