#include "gateway/gateway.h"

#include <string>

#include "net/host.h"

namespace leakdet::gateway {

namespace {

/// SplitMix64 finalizer: device ids are often sequential, so mix them before
/// taking the shard residue to avoid striping all traffic onto shard 0..k.
uint64_t MixDeviceId(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

DetectionGateway::DetectionGateway(GatewayOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      owned_metrics_(options.registry != nullptr
                         ? nullptr
                         : std::make_unique<MetricsRegistry>()),
      metrics_(options.registry != nullptr ? options.registry
                                           : owned_metrics_.get()) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.pop_batch == 0) options_.pop_batch = 1;
  submitted_ = metrics_->GetCounter("gateway.submitted");
  dropped_ = metrics_->GetCounter("gateway.dropped");
  processed_ = metrics_->GetCounter("gateway.processed");
  matched_ = metrics_->GetCounter("gateway.matched");
  swaps_ = metrics_->GetCounter("gateway.swaps");
  swap_rejected_ = metrics_->GetCounter("gateway.swap_rejected");
  prefilter_mode_ = prefilter::Resolve(options_.prefilter);
  prefilter_skipped_ = metrics_->GetCounter("gateway.prefilter_skipped");
  prefilter_candidates_ = metrics_->GetCounter("gateway.prefilter_candidates");
  prefilter_false_candidates_ =
      metrics_->GetCounter("gateway.prefilter_false_candidates");
  queue_wait_ns_ = metrics_->GetHistogram("gateway.queue_wait_ns");
  match_ns_ = metrics_->GetHistogram("gateway.match_ns");
  ingest_ns_ = metrics_->GetHistogram("gateway.ingest_ns");
  verdict_ns_ = metrics_->GetHistogram("gateway.verdict_ns");
  epoch_version_gauge_ = metrics_->GetGauge("gateway.epoch_version");
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    std::string prefix = "gateway.shard" + std::to_string(i) + ".";
    shard->enqueued = metrics_->GetCounter(prefix + "enqueued");
    shard->dropped = metrics_->GetCounter(prefix + "dropped");
    shard->processed = metrics_->GetCounter(prefix + "processed");
    shard->matched = metrics_->GetCounter(prefix + "matched");
    shard->queue_depth = metrics_->GetGauge(prefix + "queue_depth");
    shards_.push_back(std::move(shard));
  }
  // Queue occupancy is refreshed at scrape time rather than maintained on
  // the hot path. The hook captures `this`, which is why an injected
  // registry must not outlive the gateway's scrapes (see GatewayOptions).
  metrics_->OnCollect([this] {
    for (auto& shard : shards_) {
      shard->queue_depth->Set(static_cast<int64_t>(shard->queue.size()));
    }
  });
}

DetectionGateway::~DetectionGateway() { Stop(); }

Status DetectionGateway::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("gateway already started");
  }
  workers_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void DetectionGateway::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& shard : shards_) shard->queue.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t DetectionGateway::shard_of(uint64_t device_id) const {
  return static_cast<size_t>(MixDeviceId(device_id) % shards_.size());
}

uint64_t DetectionGateway::epoch_age_ns() const {
  int64_t published = last_publish_ns_.load(std::memory_order_relaxed);
  if (published < 0) return 0;
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock_->Now().time_since_epoch())
                    .count();
  return now > published ? static_cast<uint64_t>(now - published) : 0;
}

bool DetectionGateway::Submit(uint64_t device_id, core::HttpPacket packet) {
  return Submit(device_id, std::string(), std::move(packet));
}

bool DetectionGateway::Submit(uint64_t device_id, std::string tenant,
                              core::HttpPacket packet) {
  Shard& shard = *shards_[shard_of(device_id)];
  Item item{std::move(packet), clock_->Now(), std::move(tenant)};
  // Ingest wall time includes backpressure: under kBlock a full shard makes
  // this timer the queue-wait signal callers actually feel. Sampled, and the
  // start timestamp is the one the Item carries anyway, so the common case
  // adds no clock read.
  const Clock::TimePoint ingest_start = item.enqueued;
  const bool sample_ingest =
      ingest_sample_.fetch_add(1, std::memory_order_relaxed) %
          kLatencySampleEvery ==
      0;
  bool accepted = options_.overload == OverloadPolicy::kBlock
                      ? shard.queue.Push(std::move(item))
                      : shard.queue.TryPush(std::move(item));
  if (accepted) {
    submitted_->Inc();
    shard.enqueued->Inc();
  } else {
    dropped_->Inc();
    shard.dropped->Inc();
  }
  if (sample_ingest) {
    ingest_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock_->Now() -
                                                             ingest_start)
            .count()));
  }
  return accepted;
}

bool DetectionGateway::Publish(
    std::shared_ptr<const match::CompiledSignatureSet> set) {
  // Version 0 is the "no feed yet" sentinel the version gate starts at; a
  // version-0 epoch could never be distinguished from it.
  if (!set || set->version() == 0) return false;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (!compiled_ || set->version() > compiled_->version()) {
      uint64_t version = set->version();
      compiled_ = std::move(set);
      compiled_version_.store(version, std::memory_order_release);
      swaps_->Inc();
      epoch_version_gauge_->Set(static_cast<int64_t>(version));
      last_publish_ns_.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              clock_->Now().time_since_epoch())
              .count(),
          std::memory_order_relaxed);
      return true;
    }
  }
  swap_rejected_->Inc();
  return false;
}

bool DetectionGateway::PublishTenant(
    const std::string& tenant,
    std::shared_ptr<const match::CompiledSignatureSet> set) {
  if (tenant.empty()) return Publish(std::move(set));
  if (!set || set->version() == 0) return false;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    const match::CompiledSignatureSet* current = nullptr;
    if (tenant_epochs_) {
      auto it = tenant_epochs_->find(tenant);
      if (it != tenant_epochs_->end()) current = it->second.get();
    }
    if (current == nullptr || set->version() > current->version()) {
      uint64_t version = set->version();
      // Copy-on-write: workers holding the old map keep matching in-flight
      // packets on it; the swap is one shared_ptr store plus the seq bump.
      auto next = tenant_epochs_ ? std::make_shared<TenantEpochMap>(
                                       *tenant_epochs_)
                                 : std::make_shared<TenantEpochMap>();
      (*next)[tenant] = std::move(set);
      tenant_epochs_ = std::move(next);
      tenant_seq_.fetch_add(1, std::memory_order_release);
      swaps_->Inc();
      metrics_
          ->GetGauge("gateway.tenant_epoch_version", {{"tenant", tenant}})
          ->Set(static_cast<int64_t>(version));
      last_publish_ns_.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              clock_->Now().time_since_epoch())
              .count(),
          std::memory_order_relaxed);
      return true;
    }
  }
  swap_rejected_->Inc();
  return false;
}

std::shared_ptr<const match::CompiledSignatureSet>
DetectionGateway::tenant_set(const std::string& tenant) const {
  if (tenant.empty()) return current_set();
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (!tenant_epochs_) return nullptr;
  auto it = tenant_epochs_->find(tenant);
  return it == tenant_epochs_->end() ? nullptr : it->second;
}

uint64_t DetectionGateway::tenant_version(const std::string& tenant) const {
  if (tenant.empty()) return current_version();
  auto set = tenant_set(tenant);
  return set ? set->version() : 0;
}

std::vector<std::string> DetectionGateway::tenants() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (tenant_epochs_) {
    names.reserve(tenant_epochs_->size());
    for (const auto& [name, _] : *tenant_epochs_) names.push_back(name);
  }
  return names;
}

void DetectionGateway::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  match::MatchScratch scratch;
  // This worker's cached matcher epoch; refreshed only when the published
  // version gate moves, so drained batches finish on the epoch they saw.
  std::shared_ptr<const match::CompiledSignatureSet> set;
  uint64_t set_version = 0;
  // Cached tenant-namespace snapshot, refreshed on the same gate pattern as
  // the default epoch; touched only by tenant-scoped packets.
  std::shared_ptr<const TenantEpochMap> tenant_map;
  uint64_t tenant_map_seq = 0;
  uint64_t verdict_sample = 0;  // per-worker 1-in-N latency sampling cursor
  const prefilter::Mode pf_mode = prefilter_mode_;
  std::vector<Item> batch;
  batch.reserve(options_.pop_batch);
  // Per-batch scratch, reused so the steady state allocates nothing.
  std::vector<std::string> contents;
  std::vector<std::string> domains;
  std::vector<Verdict> verdicts;
  while (true) {
    batch.clear();
    if (shard.queue.PopBatch(&batch, options_.pop_batch) == 0) return;
    const size_t n = batch.size();
    auto dequeued = clock_->Now();

    // One relaxed load of the version gate per *batch* (amortized epoch
    // pointer load). Take the epoch mutex only when a Publish() moved it.
    if (compiled_version_.load(std::memory_order_relaxed) != set_version) {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      set = compiled_;
      set_version = set ? set->version() : 0;
    }
    bool tenant_checked = false;

    // Pass 1: materialize contents and host domains, prefetching the next
    // packet's payload while the current one is being assembled, and record
    // queue wait (reuses the batch's dequeue timestamp — no extra clock
    // reads).
    contents.resize(n);
    domains.resize(n);
    for (size_t j = 0; j < n; ++j) {
      if (j + 1 < n) {
        const core::HttpPacket& next = batch[j + 1].packet;
        __builtin_prefetch(next.request_line.data());
        __builtin_prefetch(next.body.data());
      }
      const Item& item = batch[j];
      queue_wait_ns_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dequeued -
                                                               item.enqueued)
              .count()));
      contents[j] = core::PacketContent(item.packet);
      if (options_.use_host_scope) {
        domains[j] = net::RegistrableDomain(item.packet.destination.host);
      } else {
        domains[j].clear();
      }
    }

    // Pass 2: match the batch. Counter deltas accumulate in locals and land
    // on the shared atomics once per batch (pass 3).
    uint64_t matched_in_batch = 0;
    uint64_t pf_skipped = 0;
    uint64_t pf_candidates = 0;
    uint64_t pf_false_candidates = 0;
    verdicts.resize(n);
    auto match_start = clock_->Now();
    for (size_t j = 0; j < n; ++j) {
      const Item& item = batch[j];
      const match::CompiledSignatureSet* match_set = set.get();
      if (!item.tenant.empty()) {
        // Tenant-scoped packet: same gate pattern against the namespace
        // snapshot, also refreshed at most once per batch.
        if (!tenant_checked) {
          tenant_checked = true;
          if (tenant_seq_.load(std::memory_order_relaxed) != tenant_map_seq) {
            std::lock_guard<std::mutex> lock(epoch_mu_);
            tenant_map = tenant_epochs_;
            tenant_map_seq = tenant_seq_.load(std::memory_order_relaxed);
          }
        }
        match_set = nullptr;
        if (tenant_map) {
          auto found = tenant_map->find(item.tenant);
          if (found != tenant_map->end()) match_set = found->second.get();
        }
      }
      Verdict& verdict = verdicts[j];
      verdict = Verdict{};
      verdict.shard = static_cast<uint32_t>(shard_index);
      if (match_set) {
        verdict.feed_version = match_set->version();
        match::PrefilterOutcome outcome;
        verdict.num_matches =
            static_cast<uint32_t>(match_set->MatchIntoPrefiltered(
                contents[j], domains[j], &scratch, pf_mode, &outcome));
        verdict.sensitive = verdict.num_matches > 0;
        switch (outcome) {
          case match::PrefilterOutcome::kSkipped:
            ++pf_skipped;
            break;
          case match::PrefilterOutcome::kCandidateMiss:
            ++pf_false_candidates;
            [[fallthrough]];
          case match::PrefilterOutcome::kCandidateHit:
            ++pf_candidates;
            break;
          case match::PrefilterOutcome::kDisabled:
            break;
        }
      }
      if (verdict.sensitive) ++matched_in_batch;
    }
    // Whole-batch match time (the per-packet figure is this over n; two
    // clock reads per batch instead of two per packet).
    match_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock_->Now() -
                                                             match_start)
            .count()));

    // Pass 3: one verdict flush, then one metrics update for the batch.
    for (size_t j = 0; j < n; ++j) {
      if (sink_) sink_(batch[j].packet, verdicts[j]);
      // End-to-end verdict latency: enqueue → sink done. This is the number
      // an operator alerts on — it folds queue wait, matching, and sink
      // cost into the latency a device's packet actually experienced.
      // Sampled (see kLatencySampleEvery): the clock read it needs is the
      // only one this loop doesn't already take.
      if (++verdict_sample % kLatencySampleEvery == 0) {
        verdict_ns_->Observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock_->Now() - batch[j].enqueued)
                .count()));
      }
    }
    processed_->Inc(n);
    shard.processed->Inc(n);
    if (matched_in_batch != 0) {
      matched_->Inc(matched_in_batch);
      shard.matched->Inc(matched_in_batch);
    }
    if (pf_skipped != 0) prefilter_skipped_->Inc(pf_skipped);
    if (pf_candidates != 0) prefilter_candidates_->Inc(pf_candidates);
    if (pf_false_candidates != 0) {
      prefilter_false_candidates_->Inc(pf_false_candidates);
    }
  }
}

}  // namespace leakdet::gateway
