#ifndef LEAKDET_GATEWAY_TRAINER_H_
#define LEAKDET_GATEWAY_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/signature_server.h"
#include "gateway/bounded_queue.h"
#include "gateway/gateway.h"
#include "gateway/metrics.h"
#include "match/compiled_set.h"
#include "store/store_manager.h"
#include "util/statusor.h"

namespace leakdet::gateway {

struct TrainerOptions {
  /// Bound on the trainer's own mailbox. While a retrain is running the
  /// mailbox absorbs this much backlog; beyond it packets are shed (and
  /// accounted) rather than stalling the detection shards.
  size_t queue_capacity = 8192;
  /// Forward every Nth *non-matching* packet to the SignatureServer (its
  /// normal pool / oracle still sees a sample of clean traffic). Matching
  /// packets are always forwarded. 1 = forward everything.
  size_t forward_normal_every = 1;
  /// Time source for retrain/compile timings. nullptr = Clock::Real().
  Clock* clock = nullptr;
  /// Optional durable store (not owned; must outlive the trainer). When set,
  /// every mailbox item is WAL-appended before ingestion, every published
  /// epoch is snapshotted, and folded-away segments are compacted. The
  /// caller should StoreManager::Recover() into the server before Start().
  store::StoreManager* store = nullptr;
  /// Signature namespace this trainer publishes into ("" = the default
  /// namespace, i.e. DetectionGateway::Publish). Non-empty routes every
  /// epoch through PublishTenant and labels the trainer.* metric families
  /// with {tenant=<name>}, so multiple tenant trainers can share one
  /// gateway and one registry without colliding.
  std::string tenant;
};

/// The single training thread behind the gateway: drains (packet, verdict)
/// pairs from its bounded mailbox into the SignatureServer — satisfying the
/// server's external-serialization contract — and, whenever a retrain
/// advances the feed version, compiles the new SignatureSet into a
/// CompiledSignatureSet and publishes it to the gateway. Detection shards
/// therefore never block on retraining: an expensive retrain only delays
/// *training* ingestion, and the mailbox's drop policy bounds even that.
///
/// Every published epoch is archived by version, so replay tooling (the
/// loadgen's --verify pass) can rebuild the exact matcher any verdict was
/// produced under.
class TrainerLoop {
 public:
  /// `server` and `gateway` must outlive the trainer. Not owned. The trainer
  /// installs itself as the server's feed observer.
  TrainerLoop(core::SignatureServer* server, DetectionGateway* gateway,
              TrainerOptions options);
  ~TrainerLoop();
  TrainerLoop(const TrainerLoop&) = delete;
  TrainerLoop& operator=(const TrainerLoop&) = delete;

  /// Starts the training thread. One-shot, like DetectionGateway::Start.
  Status Start();

  /// Closes the mailbox, drains it, and joins the thread. Idempotent.
  void Stop();

  /// The gateway sink: call set_sink(trainer.Sink()) to wire the gateway's
  /// per-packet output into training. Thread-safe, non-blocking: honors the
  /// mailbox bound by shedding (never backpressures detection shards).
  DetectionGateway::PacketSink Sink();

  /// Thread-safe offer of one packet to the training mailbox. Returns false
  /// if the packet was filtered (normal-traffic sampling) or shed.
  bool Offer(const core::HttpPacket& packet, const Verdict& verdict);

  /// The archived compiled epoch for `version` (null if never published).
  std::shared_ptr<const match::CompiledSignatureSet> SetForVersion(
      uint64_t version) const;

  uint64_t feeds_published() const {
    return feeds_published_.load(std::memory_order_relaxed);
  }
  uint64_t training_drops() const { return drops_->Value(); }

  /// Mailbox items fully handled (WAL append + ingest + any retrain/publish
  /// side effects). The release store in the training loop pairs with this
  /// acquire load, so a caller that observes N here also observes every side
  /// effect of those N items — the cluster control plane spins on this as
  /// its quiescence barrier before touching the leader's store from another
  /// thread.
  uint64_t items_processed() const {
    return items_processed_.load(std::memory_order_acquire);
  }

 private:
  /// One mailbox item: the packet together with the verdict it was matched
  /// under, so the durable log records the full (packet, verdict,
  /// feed-version) tuple, not just the packet.
  struct TrainingItem {
    core::HttpPacket packet;
    Verdict verdict;
  };

  void Run();

  core::SignatureServer* server_;
  DetectionGateway* gateway_;
  TrainerOptions options_;
  Clock* clock_ = nullptr;
  BoundedQueue<TrainingItem> mailbox_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> normal_tick_{0};
  std::atomic<uint64_t> feeds_published_{0};
  std::atomic<uint64_t> items_processed_{0};

  mutable std::mutex archive_mu_;
  std::map<uint64_t, std::shared_ptr<const match::CompiledSignatureSet>>
      archive_;

  Counter* ingested_ = nullptr;
  Counter* drops_ = nullptr;
  Counter* retrains_ = nullptr;
  Counter* wal_appends_ = nullptr;
  Counter* wal_errors_ = nullptr;
  Counter* snapshots_ = nullptr;
  Counter* snapshot_errors_ = nullptr;
  Counter* ncd_pair_hits_ = nullptr;
  Counter* ncd_pairs_computed_ = nullptr;
  Counter* singleton_compressions_ = nullptr;
  Histogram* retrain_ns_ = nullptr;
  Histogram* compile_ns_ = nullptr;
  // Per-stage retrain breakdown, taken from the DistanceMatrixStats the
  // pipeline stamps (matrix build / clustering / signature generation).
  Histogram* stage_distance_ns_ = nullptr;
  Histogram* stage_cluster_ns_ = nullptr;
  Histogram* stage_siggen_ns_ = nullptr;
};

}  // namespace leakdet::gateway

#endif  // LEAKDET_GATEWAY_TRAINER_H_
