#include "gateway/trainer.h"

#include <chrono>
#include <utility>

namespace leakdet::gateway {

namespace {

uint64_t ElapsedNs(Clock* clock, Clock::TimePoint since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock->Now() -
                                                           since)
          .count());
}

}  // namespace

TrainerLoop::TrainerLoop(core::SignatureServer* server,
                         DetectionGateway* gateway, TrainerOptions options)
    : server_(server),
      gateway_(gateway),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      mailbox_(options.queue_capacity == 0 ? 1 : options.queue_capacity) {
  if (options_.forward_normal_every == 0) options_.forward_normal_every = 1;
  MetricsRegistry* metrics = gateway_->metrics();
  // Tenant trainers share one registry: label their series so per-tenant
  // retrain rates and WAL health stay distinguishable on the scrape surface.
  obs::Labels labels;
  if (!options_.tenant.empty()) labels = {{"tenant", options_.tenant}};
  ingested_ = metrics->GetCounter("trainer.ingested", labels);
  drops_ = metrics->GetCounter("trainer.dropped", labels);
  retrains_ = metrics->GetCounter("trainer.retrains", labels);
  wal_appends_ = metrics->GetCounter("trainer.wal_appends", labels);
  wal_errors_ = metrics->GetCounter("trainer.wal_errors", labels);
  snapshots_ = metrics->GetCounter("trainer.snapshots", labels);
  snapshot_errors_ = metrics->GetCounter("trainer.snapshot_errors", labels);
  ncd_pair_hits_ = metrics->GetCounter("trainer.ncd_pair_hits", labels);
  ncd_pairs_computed_ =
      metrics->GetCounter("trainer.ncd_pairs_computed", labels);
  singleton_compressions_ =
      metrics->GetCounter("trainer.singleton_compressions", labels);
  retrain_ns_ = metrics->GetHistogram("trainer.retrain_ns", labels);
  compile_ns_ = metrics->GetHistogram("trainer.compile_ns", labels);
  stage_distance_ns_ =
      metrics->GetHistogram("trainer.stage_distance_ns", labels);
  stage_cluster_ns_ = metrics->GetHistogram("trainer.stage_cluster_ns", labels);
  stage_siggen_ns_ = metrics->GetHistogram("trainer.stage_siggen_ns", labels);
  // The publication hook: runs on this trainer's thread inside
  // Ingest()/Retrain(), immediately after the feed version advances.
  server_->SetFeedObserver(
      [this](uint64_t version, const match::SignatureSet& set) {
        auto compile_start = clock_->Now();
        auto compiled =
            std::make_shared<const match::CompiledSignatureSet>(set, version);
        compile_ns_->Observe(ElapsedNs(clock_, compile_start));
        {
          std::lock_guard<std::mutex> lock(archive_mu_);
          archive_[version] = compiled;
        }
        if (options_.tenant.empty()) {
          gateway_->Publish(std::move(compiled));
        } else {
          gateway_->PublishTenant(options_.tenant, std::move(compiled));
        }
        feeds_published_.fetch_add(1, std::memory_order_relaxed);
      });
}

TrainerLoop::~TrainerLoop() {
  Stop();
  server_->SetFeedObserver(nullptr);
}

Status TrainerLoop::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("trainer already started");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TrainerLoop::Stop() {
  if (stopped_.exchange(true)) return;
  mailbox_.Close();
  if (thread_.joinable()) thread_.join();
  // A clean shutdown leaves no unacknowledged tail: whatever the sync
  // policy deferred becomes durable now.
  if (options_.store != nullptr) options_.store->Sync();
}

DetectionGateway::PacketSink TrainerLoop::Sink() {
  return [this](const core::HttpPacket& packet, const Verdict& verdict) {
    Offer(packet, verdict);
  };
}

std::shared_ptr<const match::CompiledSignatureSet> TrainerLoop::SetForVersion(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(archive_mu_);
  auto it = archive_.find(version);
  return it == archive_.end() ? nullptr : it->second;
}

bool TrainerLoop::Offer(const core::HttpPacket& packet,
                        const Verdict& verdict) {
  if (!verdict.sensitive) {
    // Sample clean traffic so the server's normal pool (and its oracle's
    // chance to catch leaks the current signatures miss) stays populated
    // without doubling every packet's work.
    uint64_t tick = normal_tick_.fetch_add(1, std::memory_order_relaxed);
    if (tick % options_.forward_normal_every != 0) return false;
  }
  if (!mailbox_.TryPush(TrainingItem{packet, verdict})) {
    drops_->Inc();
    return false;
  }
  return true;
}

void TrainerLoop::Run() {
  TrainingItem item;
  uint64_t appends_unflushed = 0;
  while (mailbox_.Pop(&item)) {
    // Durability before ingestion: a record the server has acted on must
    // already be in the log, or a crash could retrain on traffic recovery
    // cannot reproduce.
    if (options_.store != nullptr) {
      store::FeedRecord record;
      record.feed_version = item.verdict.feed_version;
      record.sensitive = item.verdict.sensitive;
      record.shard = item.verdict.shard;
      record.num_matches = item.verdict.num_matches;
      record.packet = item.packet;
      if (options_.store->Append(std::move(record)).ok()) {
        wal_appends_->Inc();
        ++appends_unflushed;
      } else {
        wal_errors_->Inc();
      }
    }
    uint64_t version_before = server_->feed_version();
    auto ingest_start = clock_->Now();
    server_->Ingest(item.packet);
    ingested_->Inc();
    if (server_->feed_version() != version_before) {
      // The whole Ingest was dominated by the retrain it triggered (the
      // observer has already compiled + published the new epoch).
      retrain_ns_->Observe(ElapsedNs(clock_, ingest_start));
      retrains_->Inc();
      // Accumulate the distance-matrix cache effectiveness of that retrain
      // so operators can see how well the shared NCD pair cache is working.
      const core::DistanceMatrixStats& stats = server_->last_distance_stats();
      ncd_pair_hits_->Inc(stats.ncd_pair_hits);
      ncd_pairs_computed_->Inc(stats.ncd_pairs_computed);
      singleton_compressions_->Inc(stats.singleton_compressions);
      // Stage breakdown of the retrain that just ran, stamped by the
      // pipeline into the stats it returned.
      stage_distance_ns_->Observe(stats.distance_build_ns);
      stage_cluster_ns_->Observe(stats.cluster_ns);
      stage_siggen_ns_->Observe(stats.siggen_ns);
      // Persist the epoch that just published, then retire whatever the
      // snapshot made redundant.
      if (options_.store != nullptr) {
        if (options_.store->WriteSnapshot(*server_).ok()) {
          snapshots_->Inc();
          options_.store->Compact();
        } else {
          snapshot_errors_->Inc();
        }
        appends_unflushed = 0;  // the snapshot path synced the log
      }
    }
    // Group commit follows the mailbox: when the backlog drains, flush the
    // staged WAL batch so replication (/replog serves only flushed bytes)
    // and failover see every record the trainer has acted on, without a
    // sync per record while a burst is in flight.
    if (options_.store != nullptr && appends_unflushed > 0 &&
        mailbox_.size() == 0) {
      if (options_.store->Sync().ok()) appends_unflushed = 0;
    }
    items_processed_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace leakdet::gateway
