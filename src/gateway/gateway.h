#ifndef LEAKDET_GATEWAY_GATEWAY_H_
#define LEAKDET_GATEWAY_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/packet.h"
#include "gateway/bounded_queue.h"
#include "gateway/metrics.h"
#include "match/compiled_set.h"
#include "prefilter/prefilter.h"
#include "util/clock.h"
#include "util/statusor.h"

namespace leakdet::gateway {

/// What to do when a shard's queue is full (the overload policy of the
/// gateway's bounded-memory guarantee).
enum class OverloadPolicy {
  kBlock,       ///< backpressure: Submit blocks until the shard has room
  kDropNewest,  ///< load shedding: Submit fails fast, the drop is accounted
};

struct GatewayOptions {
  /// Worker shards. Packets are routed by device id, so per-device order is
  /// preserved while distinct devices match in parallel.
  size_t num_shards = 4;
  /// Per-shard queue bound (packets).
  size_t queue_capacity = 1024;
  /// Max packets a worker drains per lock acquisition.
  size_t pop_batch = 64;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Enforce signature host scopes against the packet destination's
  /// registrable domain (same switch as core::Detector).
  bool use_host_scope = true;
  /// Prefilter kernel for the match hot path. kAuto resolves through
  /// $LEAKDET_PREFILTER and CPUID at construction (prefilter::Resolve);
  /// kOff sends every packet straight to the DFA — the escape hatch the
  /// forced-off chaos/gateway suites use to prove verdict parity is not
  /// prefilter-dependent. Verdicts are bit-identical either way.
  prefilter::Mode prefilter = prefilter::Mode::kAuto;
  /// Time source for queue-wait and match timings. nullptr = Clock::Real().
  /// The harness injects a testing::VirtualClock here so timing histograms
  /// are deterministic under fault schedules.
  Clock* clock = nullptr;
  /// Metrics destination. nullptr = a gateway-private registry (keeps unit
  /// tests and chaos probe gateways isolated); production binaries pass a
  /// shared obs::Registry so gateway metrics land on the process scrape
  /// surface. The gateway registers a queue-depth collect hook on it, so an
  /// injected registry must not be scraped after the gateway is destroyed.
  MetricsRegistry* registry = nullptr;
};

/// The matching outcome the gateway reports for one packet.
struct Verdict {
  bool sensitive = false;     ///< any signature matched
  uint64_t feed_version = 0;  ///< matcher epoch the packet was matched under
  uint32_t shard = 0;         ///< shard that processed it
  uint32_t num_matches = 0;   ///< matching signature count
};

/// The concurrent online detection front of Figure 3: N worker shards pull
/// packets from bounded queues, match them against the current compiled
/// signature epoch, and hand every (packet, verdict) pair to a sink — the
/// TrainerLoop forwards suspicious traffic into the SignatureServer from
/// there, closing the retrain loop.
///
/// Hot-swap: epochs are published through a version gate. Each worker caches
/// a shared_ptr to its current epoch and per dequeued *batch* (up to
/// pop_batch packets) does one relaxed atomic load of the published version;
/// only when the gate has moved does it take the epoch mutex to refresh its
/// cache. Steady state therefore costs a single uncontended load per batch —
/// no refcount traffic, no locks — and a swap costs one mutex acquisition
/// per worker. Packets of a drained batch finish on the epoch visible at
/// drain time; the old automaton is freed when the last worker refreshes its
/// cache, RCU-style.
///
/// Match hot path: a batch is processed in three passes — materialize
/// contents (prefetching the next packet's payload), match every packet
/// through the epoch's rare-token prefilter (empty candidate bitmap = the
/// dense DFA never runs; see prefilter::Prefilter), then one verdict flush
/// plus one counter update for the whole batch.
///
/// (std::atomic<std::shared_ptr> would express the same idea, but libstdc++
/// implements it with a spinlock bit whose reader unlock is relaxed, which
/// both costs two RMWs per load and trips ThreadSanitizer.)
class DetectionGateway {
 public:
  /// Called on a worker thread for every processed packet. Must be
  /// thread-safe; it is invoked concurrently from all shards.
  using PacketSink =
      std::function<void(const core::HttpPacket&, const Verdict&)>;

  explicit DetectionGateway(GatewayOptions options);
  ~DetectionGateway();
  DetectionGateway(const DetectionGateway&) = delete;
  DetectionGateway& operator=(const DetectionGateway&) = delete;

  /// Installs the per-packet sink. Must be called before Start().
  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Spawns the worker threads. One-shot: a stopped gateway is not
  /// restartable (make a new one).
  Status Start();

  /// Closes every queue, lets workers drain the backlog, and joins them.
  /// After Stop() returns, every accepted packet has produced a verdict.
  /// Idempotent.
  void Stop();

  /// Routes `packet` to its device's shard. Returns true if the packet was
  /// accepted (it *will* be processed), false if it was shed under
  /// kDropNewest overload or after Stop(). With kBlock this waits for queue
  /// room and only returns false once the gateway is stopping.
  bool Submit(uint64_t device_id, core::HttpPacket packet);

  /// Tenant-scoped Submit: the packet is matched against `tenant`'s epoch
  /// (see PublishTenant) instead of the default one. "" is the default
  /// namespace and behaves exactly like the two-argument overload. A tenant
  /// with no published epoch yet matches nothing (feed_version 0), the same
  /// pre-first-feed behavior the default namespace has.
  bool Submit(uint64_t device_id, std::string tenant, core::HttpPacket packet);

  /// Publishes a new compiled matcher epoch. Rejects (returns false) null
  /// sets, version 0 (the "no feed yet" sentinel), and versions not strictly
  /// newer than the installed one, so late publishers can never roll the
  /// gateway back to a stale feed.
  bool Publish(std::shared_ptr<const match::CompiledSignatureSet> set);

  /// Publishes an epoch into `tenant`'s namespace (same rejection rules,
  /// applied per tenant; "" delegates to Publish). Namespaces are fully
  /// isolated: tenant epochs only ever match packets submitted for that
  /// tenant, and versions are monotonic per tenant, not globally.
  bool PublishTenant(const std::string& tenant,
                     std::shared_ptr<const match::CompiledSignatureSet> set);

  /// The installed epoch for `tenant` (null before its first publish; ""
  /// reads the default namespace).
  std::shared_ptr<const match::CompiledSignatureSet> tenant_set(
      const std::string& tenant) const;

  /// Version of `tenant`'s installed epoch (0 before its first publish).
  uint64_t tenant_version(const std::string& tenant) const;

  /// Tenants with a published epoch (excludes the default namespace).
  std::vector<std::string> tenants() const;

  /// The currently installed epoch (null before the first Publish).
  std::shared_ptr<const match::CompiledSignatureSet> current_set() const {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    return compiled_;
  }

  /// Version of the installed epoch (0 before the first Publish).
  uint64_t current_version() const {
    return compiled_version_.load(std::memory_order_acquire);
  }

  size_t shard_of(uint64_t device_id) const;
  size_t num_shards() const { return shards_.size(); }

  /// The gateway's metrics registry (counters: gateway.submitted / dropped /
  /// processed / matched / swaps / swap_rejected, per-shard
  /// gateway.shard<i>.*; histograms: gateway.queue_wait_ns /
  /// gateway.match_ns / gateway.ingest_ns / gateway.verdict_ns; gauges:
  /// gateway.epoch_version, per-shard queue_depth refreshed at scrape time).
  /// The injected registry if GatewayOptions.registry was set, else the
  /// gateway-owned one (valid for the gateway's lifetime).
  MetricsRegistry* metrics() { return metrics_; }

  /// Nanoseconds of this clock's time since the last successful Publish
  /// (staleness of the serving epoch). 0 before the first publish.
  uint64_t epoch_age_ns() const;

  // Convenience totals (sums over shards where applicable).
  uint64_t submitted() const { return submitted_->Value(); }
  uint64_t dropped() const { return dropped_->Value(); }
  uint64_t processed() const { return processed_->Value(); }
  uint64_t matched() const { return matched_->Value(); }
  uint64_t swaps() const { return swaps_->Value(); }

  /// The concrete prefilter kernel the workers run (kOff, kScalar, kSse2,
  /// or kAvx2 — resolved once at construction).
  prefilter::Mode prefilter_mode() const { return prefilter_mode_; }
  /// Packets whose empty candidate bitmap skipped the DFA entirely.
  uint64_t prefilter_skipped() const { return prefilter_skipped_->Value(); }
  /// Packets with candidates that fell through to the restricted DFA.
  uint64_t prefilter_candidates() const {
    return prefilter_candidates_->Value();
  }
  /// Fell-through packets where no candidate actually matched (the
  /// prefilter's false-positive count; false negatives are impossible).
  uint64_t prefilter_false_candidates() const {
    return prefilter_false_candidates_->Value();
  }

 private:
  struct Item {
    core::HttpPacket packet;
    Clock::TimePoint enqueued;
    /// Signature namespace to match under ("" = default). Small-string in
    /// practice (tenant names are short), so routing stays allocation-light.
    std::string tenant;
  };
  /// Immutable snapshot of every tenant's current epoch, swapped wholesale
  /// on PublishTenant (copy-on-write; reads are lock-free once a worker
  /// holds the snapshot).
  using TenantEpochMap = std::unordered_map<
      std::string, std::shared_ptr<const match::CompiledSignatureSet>>;
  struct Shard {
    explicit Shard(size_t capacity) : queue(capacity) {}
    BoundedQueue<Item> queue;
    Counter* enqueued = nullptr;
    Counter* dropped = nullptr;
    Counter* processed = nullptr;
    Counter* matched = nullptr;
    Gauge* queue_depth = nullptr;  ///< refreshed by the collect hook
  };

  void WorkerLoop(size_t shard_index);

  GatewayOptions options_;
  Clock* clock_ = nullptr;
  // Private registry unless one was injected; `metrics_` always points at
  // the live one (declaration order matters: owned before the pointer).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  // The published epoch. `compiled_` is guarded by `epoch_mu_`;
  // `compiled_version_` is the lock-free gate workers poll to learn that the
  // pointer changed (store-release under the mutex, load-relaxed on the hot
  // path).
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const match::CompiledSignatureSet> compiled_;
  std::atomic<uint64_t> compiled_version_{0};
  // Tenant namespaces, behind their own gate so the default (single-tenant)
  // hot path is untouched: workers consult these only for items whose
  // tenant is non-empty. `tenant_epochs_` is guarded by `epoch_mu_`;
  // `tenant_seq_` counts PublishTenant swaps (the workers' refresh gate).
  std::shared_ptr<const TenantEpochMap> tenant_epochs_;
  std::atomic<uint64_t> tenant_seq_{0};
  PacketSink sink_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  /// Resolved once at construction (env + CPUID); workers read it lock-free.
  prefilter::Mode prefilter_mode_ = prefilter::Mode::kScalar;

  Counter* submitted_ = nullptr;
  Counter* dropped_ = nullptr;
  Counter* processed_ = nullptr;
  Counter* matched_ = nullptr;
  Counter* swaps_ = nullptr;
  Counter* swap_rejected_ = nullptr;
  Counter* prefilter_skipped_ = nullptr;
  Counter* prefilter_candidates_ = nullptr;
  Counter* prefilter_false_candidates_ = nullptr;
  Histogram* queue_wait_ns_ = nullptr;
  Histogram* match_ns_ = nullptr;
  Histogram* ingest_ns_ = nullptr;   ///< Submit() wall time (incl. backpressure)
  Histogram* verdict_ns_ = nullptr;  ///< enqueue → sink-done per packet
  Gauge* epoch_version_gauge_ = nullptr;
  /// ingest_ns/verdict_ns are sampled 1-in-kLatencySampleEvery: the extra
  /// clock read per observation is measurable at full ingest rate (clock
  /// reads are a syscall on some hosts), and a sampled latency histogram
  /// loses nothing for monitoring. queue_wait_ns/match_ns reuse timestamps
  /// the worker already takes, so they stay exhaustive.
  static constexpr uint64_t kLatencySampleEvery = 16;
  std::atomic<uint64_t> ingest_sample_{0};
  /// clock_->Now() of the last successful Publish, as ns since the clock's
  /// epoch; -1 before the first publish. Atomic so /statusz renderers on the
  /// admin thread can compute epoch age without touching epoch_mu_.
  std::atomic<int64_t> last_publish_ns_{-1};
};

}  // namespace leakdet::gateway

#endif  // LEAKDET_GATEWAY_GATEWAY_H_
