#include "gateway/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace leakdet::gateway {

namespace {

size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t bit = 63 - static_cast<size_t>(std::countl_zero(value));
  return std::min(bit, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Take() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return uint64_t{1} << (i + 1);  // bucket upper edge
  }
  return uint64_t{1} << kNumBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>());
  return histograms_.back().second.get();
}

std::string MetricsRegistry::TextDump() const {
  struct Line {
    std::string name;
    std::string rendered;
  };
  std::vector<Line> lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      lines.push_back({name, name + " " + std::to_string(counter->Value())});
    }
    for (const auto& [name, histogram] : histograms_) {
      Histogram::Snapshot snap = histogram->Take();
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s count=%llu sum=%llu mean=%.1f p50=%llu p90=%llu "
                    "p99=%llu",
                    name.c_str(), static_cast<unsigned long long>(snap.count),
                    static_cast<unsigned long long>(snap.sum), snap.Mean(),
                    static_cast<unsigned long long>(snap.Quantile(0.50)),
                    static_cast<unsigned long long>(snap.Quantile(0.90)),
                    static_cast<unsigned long long>(snap.Quantile(0.99)));
      lines.push_back({name, buf});
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.name < b.name; });
  std::string out;
  for (const Line& line : lines) {
    out += line.rendered;
    out += '\n';
  }
  return out;
}

}  // namespace leakdet::gateway
