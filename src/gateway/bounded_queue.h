#ifndef LEAKDET_GATEWAY_BOUNDED_QUEUE_H_
#define LEAKDET_GATEWAY_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace leakdet::gateway {

/// A bounded multi-producer multi-consumer queue, the per-shard mailbox of
/// the detection gateway. Capacity is a hard bound: producers either wait
/// (backpressure) or fail fast (load shedding) — the queue never grows past
/// it, which is what keeps gateway memory flat under overload.
///
/// Close() transitions the queue to draining: producers are refused, and
/// consumers keep receiving until the backlog is empty, so no accepted item
/// is ever lost on shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (item not enqueued) once closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed (the caller
  /// accounts the drop).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false only when the queue is closed *and*
  /// fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Pops up to `max_items` at once into `out` (appended), blocking for the
  /// first one. Returns the number popped; 0 means closed-and-drained.
  /// Batching amortizes lock traffic for high-throughput consumers.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t n = 0;
    while (n < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Refuses further pushes and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace leakdet::gateway

#endif  // LEAKDET_GATEWAY_BOUNDED_QUEUE_H_
