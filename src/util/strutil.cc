#include "util/strutil.h"

#include <cctype>

namespace leakdet {

namespace {
char ToLowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
char ToUpperChar(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToLowerChar(c);
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToUpperChar(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerChar(a[i]) != ToLowerChar(b[i])) return false;
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  const std::string_view ws = " \t\r\n";
  size_t begin = s.find_first_not_of(ws);
  // All-whitespace trims to an empty view *into s* — callers doing pointer
  // arithmetic against s (offset computation, slicing) must never receive a
  // default-constructed view whose data() is nullptr.
  if (begin == std::string_view::npos) return s.substr(0, 0);
  size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    first = false;
    out += p;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string HexEncode(std::string_view data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out += kDigits[c >> 4];
    out += kDigits[c & 0xF];
  }
  return out;
}

StatusOr<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

StatusOr<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in integer");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("integer overflow");
    }
    value = value * 10 + digit;
  }
  return value;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace leakdet
