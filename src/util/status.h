#ifndef LEAKDET_UTIL_STATUS_H_
#define LEAKDET_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace leakdet {

/// Error category for a `Status`. Mirrors the usual database-engine set
/// (RocksDB / Abseil style): a small closed enum that callers can switch on.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kCorruption = 5,
  kIOError = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantics error type used across every public leakdet API.
///
/// The library never throws exceptions across its API boundary; fallible
/// operations return `Status` (or `StatusOr<T>` for fallible producers).
/// A default-constructed `Status` is OK and carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status`.
#define LEAKDET_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::leakdet::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace leakdet

#endif  // LEAKDET_UTIL_STATUS_H_
