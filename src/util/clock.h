#ifndef LEAKDET_UTIL_CLOCK_H_
#define LEAKDET_UTIL_CLOCK_H_

#include <chrono>

namespace leakdet {

/// Narrow time source injected wherever leakdet computes deadlines or
/// durations (feed-server request budgets, gateway queue-wait/match timings,
/// trainer retrain timings). Production code uses Clock::Real(); the
/// deterministic test harness substitutes testing::VirtualClock so every
/// timeout fires at an exact, replayable instant.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;

  /// Current (monotonic) time on this clock.
  virtual TimePoint Now() = 0;

  /// Blocks the caller for `duration` of this clock's time.
  virtual void SleepFor(std::chrono::nanoseconds duration) = 0;

  /// The process-wide wall clock (std::chrono::steady_clock). Never null.
  static Clock* Real();
};

}  // namespace leakdet

#endif  // LEAKDET_UTIL_CLOCK_H_
