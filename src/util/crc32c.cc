#include "util/crc32c.h"

#include <array>
#include <cstddef>

namespace leakdet {

namespace {

/// 8 tables of 256 entries: table[0] is the plain byte-at-a-time table for
/// the reflected Castagnoli polynomial, table[k] advances a byte through k
/// additional zero bytes, enabling 8-bytes-per-iteration slicing.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const Crc32cTables& tb = Tables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t c = ~crc;
  while (n >= 8) {
    // Little-endian-agnostic 8-byte slice: fold the current CRC into the
    // first four bytes, then look all eight up in the stride tables.
    uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24));
    c = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
        tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
        tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace leakdet
