#ifndef LEAKDET_UTIL_STRUTIL_H_
#define LEAKDET_UTIL_STRUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace leakdet {

/// Non-owning byte-string view used throughout the library.
using Slice = std::string_view;

/// ASCII-lowercases `s` (locale-independent).
std::string AsciiToLower(std::string_view s);

/// ASCII-uppercases `s` (locale-independent).
std::string AsciiToUpper(std::string_view s);

/// True iff `a` and `b` are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing ASCII whitespace (" \t\r\n").
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on the single character `sep`. Empty fields are preserved:
/// Split("a,,b", ',') == {"a", "", "b"}; Split("", ',') == {""}.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Lowercase hex encoding of `data` (two chars per byte).
std::string HexEncode(std::string_view data);

/// Decodes a hex string (case-insensitive). Fails on odd length or non-hex
/// characters.
StatusOr<std::string> HexDecode(std::string_view hex);

/// Parses a non-negative base-10 integer that must span the whole input.
StatusOr<uint64_t> ParseUint64(std::string_view s);

/// True iff `haystack` contains `needle` (empty needle always matches).
bool Contains(std::string_view haystack, std::string_view needle);

/// True iff every character of `s` is an ASCII decimal digit (and s nonempty).
bool IsAllDigits(std::string_view s);

}  // namespace leakdet

#endif  // LEAKDET_UTIL_STRUTIL_H_
