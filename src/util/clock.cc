#include "util/clock.h"

#include <thread>

namespace leakdet {

namespace {

class RealClock final : public Clock {
 public:
  TimePoint Now() override { return std::chrono::steady_clock::now(); }
  void SleepFor(std::chrono::nanoseconds duration) override {
    std::this_thread::sleep_for(duration);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

}  // namespace leakdet
