#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string_view>
#include <unordered_set>

namespace leakdet {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

std::string Rng::RandomString(size_t length, std::string_view alphabet) {
  assert(!alphabet.empty());
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += alphabet[UniformInt(alphabet.size())];
  }
  return out;
}

std::string Rng::RandomDigits(size_t length) {
  return RandomString(length, "0123456789");
}

std::string Rng::RandomHex(size_t length) {
  return RandomString(length, "0123456789abcdef");
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over an index array.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(UniformInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t v = static_cast<size_t>(UniformInt(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace leakdet
