#ifndef LEAKDET_UTIL_CRC32C_H_
#define LEAKDET_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace leakdet {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum the
/// durable store frames every WAL record and snapshot section with. Software
/// slice-by-8 implementation; matches the iSCSI / RFC 3720 test vectors.

/// Extends `crc` (a previous Crc32c/Crc32cExtend result) with `data`.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// One-shot CRC-32C of `data`.
inline uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

/// Masks a CRC before storing it alongside the data it covers. Storing raw
/// CRCs of payloads that themselves embed CRCs (e.g. a log of log files)
/// weakens the check; the rotate-and-add masking (same scheme as leveldb)
/// avoids that while staying invertible.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

/// Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace leakdet

#endif  // LEAKDET_UTIL_CRC32C_H_
