#ifndef LEAKDET_UTIL_RNG_H_
#define LEAKDET_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace leakdet {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All randomness in leakdet flows through explicitly-passed
/// `Rng` instances so every experiment is reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability `p` of true (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform random ASCII string over the given alphabet.
  std::string RandomString(size_t length, std::string_view alphabet);

  /// Uniform random decimal-digit string of `length` digits.
  std::string RandomDigits(size_t length);

  /// Uniform random lowercase-hex string of `length` characters.
  std::string RandomHex(size_t length);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n), in
  /// selection order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// Zipf(s, n) sampler over ranks {0, .., n-1}: P(rank k) ∝ 1/(k+1)^s.
/// Used to model the long-tailed destination-popularity distribution the
/// paper observes (Table II / Figure 2). Sampling is O(log n) via a
/// precomputed CDF.
class ZipfSampler {
 public:
  /// Builds the sampler. `n` must be >= 1; `s` is the skew exponent.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace leakdet

#endif  // LEAKDET_UTIL_RNG_H_
