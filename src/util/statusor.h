#ifndef LEAKDET_UTIL_STATUSOR_H_
#define LEAKDET_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace leakdet {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Constructing a `StatusOr` from an OK status is a
/// programming error and is converted to an Internal error.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
/// otherwise assigns the value to `lhs`. Usable in functions returning Status
/// or StatusOr.
#define LEAKDET_ASSIGN_OR_RETURN(lhs, rexpr)       \
  LEAKDET_ASSIGN_OR_RETURN_IMPL_(                  \
      LEAKDET_STATUS_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define LEAKDET_STATUS_CONCAT_INNER_(a, b) a##b
#define LEAKDET_STATUS_CONCAT_(a, b) LEAKDET_STATUS_CONCAT_INNER_(a, b)
#define LEAKDET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace leakdet

#endif  // LEAKDET_UTIL_STATUSOR_H_
