#ifndef LEAKDET_HTTP_URL_H_
#define LEAKDET_HTTP_URL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace leakdet::http {

/// One `key=value` pair from a query string or form body. Order-preserving;
/// duplicate keys are allowed (as on the wire).
struct QueryParam {
  std::string key;
  std::string value;

  friend bool operator==(const QueryParam& a, const QueryParam& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Percent-encodes `s` for use inside a query component: unreserved
/// characters (ALPHA / DIGIT / "-" / "." / "_" / "~") pass through, space
/// becomes "%20", everything else becomes %XX (uppercase hex).
std::string PercentEncode(std::string_view s);

/// How PercentDecode treats '+'. Only `application/x-www-form-urlencoded`
/// data (query strings, form bodies) encodes space as '+'; in a path or a
/// cookie value '+' is a literal byte (base64-ish ad-module tokens carry
/// them), and turning it into a space corrupts the bytes signatures are
/// generated from.
enum class PlusDecoding {
  kLiteral,  ///< '+' stays '+' (paths, cookie values — the safe default)
  kSpace,    ///< '+' becomes ' ' (form-urlencoded query fields)
};

/// Decodes %XX escapes; `plus` selects '+' handling (literal by default).
/// Fails on truncated or non-hex escapes.
StatusOr<std::string> PercentDecode(std::string_view s,
                                    PlusDecoding plus = PlusDecoding::kLiteral);

/// Parses "a=1&b=2" into ordered pairs. A field without '=' yields an empty
/// value ("flag" -> {"flag", ""}). Keys/values are percent-decoded; malformed
/// escapes fail. An empty string yields no params.
StatusOr<std::vector<QueryParam>> ParseQuery(std::string_view query);

/// Inverse of ParseQuery (keys and values are percent-encoded).
std::string BuildQuery(const std::vector<QueryParam>& params);

/// A request-target split into path and raw (undecoded) query.
struct Target {
  std::string path;       ///< "/ad/fetch" (never empty; "/" if absent)
  std::string raw_query;  ///< "id=3&x=y" (no leading '?'; may be empty)
};

/// Splits "/p?a=1" into {"/p", "a=1"}. No validation of the path bytes.
Target SplitTarget(std::string_view target);

}  // namespace leakdet::http

#endif  // LEAKDET_HTTP_URL_H_
