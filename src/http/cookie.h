#ifndef LEAKDET_HTTP_COOKIE_H_
#define LEAKDET_HTTP_COOKIE_H_

#include <string>
#include <string_view>
#include <vector>

namespace leakdet::http {

/// One cookie-pair from a Cookie request header. `has_value` distinguishes
/// the valueless form `sid` from the empty-valued `sid=`: they are different
/// wire bytes, and signatures are generated from wire bytes, so
/// parse→serialize must preserve the distinction.
struct Cookie {
  std::string name;
  std::string value;
  bool has_value = true;

  friend bool operator==(const Cookie& a, const Cookie& b) {
    return a.name == b.name && a.value == b.value &&
           a.has_value == b.has_value;
  }
};

/// Parses a Cookie header value ("a=1; b=2") into ordered pairs. Lenient:
/// pairs without '=' become {name, ""}; empty segments are skipped;
/// whitespace around names/values is trimmed.
std::vector<Cookie> ParseCookieHeader(std::string_view header);

/// Serializes pairs back to "a=1; b=2".
std::string SerializeCookies(const std::vector<Cookie>& cookies);

}  // namespace leakdet::http

#endif  // LEAKDET_HTTP_COOKIE_H_
