#ifndef LEAKDET_HTTP_RESPONSE_H_
#define LEAKDET_HTTP_RESPONSE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "util/statusor.h"

namespace leakdet::http {

/// An HTTP/1.1 response message — the signature-feed server's output
/// (Figure 3's server→device channel).
class HttpResponse {
 public:
  HttpResponse() = default;
  HttpResponse(int status_code, std::string reason)
      : status_code_(status_code), reason_(std::move(reason)) {}

  int status_code() const { return status_code_; }
  const std::string& reason() const { return reason_; }
  const std::string& version() const { return version_; }
  const std::string& body() const { return body_; }
  const std::vector<HeaderField>& headers() const { return headers_; }

  void set_status(int code, std::string reason) {
    status_code_ = code;
    reason_ = std::move(reason);
  }
  void set_body(std::string body) { body_ = std::move(body); }

  void AddHeader(std::string name, std::string value);
  std::optional<std::string_view> FindHeader(std::string_view name) const;

  /// Wire form: status line, headers (Content-Length appended automatically
  /// if absent), CRLF, body.
  std::string Serialize() const;

 private:
  std::string version_ = "HTTP/1.1";
  int status_code_ = 200;
  std::string reason_ = "OK";
  std::vector<HeaderField> headers_;
  std::string body_;
};

/// Parses a complete HTTP response. Content-Length (when present) must
/// match the remaining bytes; otherwise the remainder is the body.
StatusOr<HttpResponse> ParseResponse(std::string_view raw);

}  // namespace leakdet::http

#endif  // LEAKDET_HTTP_RESPONSE_H_
