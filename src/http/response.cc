#include "http/response.h"

#include "util/strutil.h"

namespace leakdet::http {

void HttpResponse::AddHeader(std::string name, std::string value) {
  headers_.push_back(HeaderField{std::move(name), std::move(value)});
}

std::optional<std::string_view> HttpResponse::FindHeader(
    std::string_view name) const {
  for (const HeaderField& h : headers_) {
    if (EqualsIgnoreCase(h.name, name)) return std::string_view(h.value);
  }
  return std::nullopt;
}

std::string HttpResponse::Serialize() const {
  std::string out = version_;
  out += ' ';
  out += std::to_string(status_code_);
  out += ' ';
  out += reason_;
  out += "\r\n";
  bool has_length = false;
  for (const HeaderField& h : headers_) {
    if (EqualsIgnoreCase(h.name, "Content-Length")) has_length = true;
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(body_.size()) + "\r\n";
  }
  out += "\r\n";
  out += body_;
  return out;
}

StatusOr<HttpResponse> ParseResponse(std::string_view raw) {
  size_t line_end = raw.find('\n');
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("missing status line terminator");
  }
  std::string_view line = raw.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  // Status line: HTTP/x.y SP code SP reason.
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || !line.starts_with("HTTP/")) {
    return Status::InvalidArgument("bad status line");
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view code_text =
      line.substr(sp1 + 1, sp2 == std::string_view::npos
                               ? std::string_view::npos
                               : sp2 - sp1 - 1);
  LEAKDET_ASSIGN_OR_RETURN(uint64_t code, ParseUint64(code_text));
  if (code < 100 || code > 599) {
    return Status::InvalidArgument("status code out of range");
  }
  HttpResponse response;
  response.set_status(static_cast<int>(code),
                      sp2 == std::string_view::npos
                          ? ""
                          : std::string(line.substr(sp2 + 1)));

  std::string_view rest = raw.substr(line_end + 1);
  while (true) {
    size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      return Status::InvalidArgument("header block not terminated");
    }
    std::string_view header = rest.substr(0, nl);
    if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
    rest.remove_prefix(nl + 1);
    if (header.empty()) break;
    size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("header line without colon");
    }
    response.AddHeader(std::string(TrimWhitespace(header.substr(0, colon))),
                       std::string(TrimWhitespace(header.substr(colon + 1))));
  }
  if (auto cl = response.FindHeader("Content-Length")) {
    auto parsed = ParseUint64(*cl);
    if (!parsed.ok() || *parsed != rest.size()) {
      return Status::InvalidArgument("Content-Length mismatch");
    }
  }
  response.set_body(std::string(rest));
  return response;
}

}  // namespace leakdet::http
