#include "http/cookie.h"

#include "util/strutil.h"

namespace leakdet::http {

std::vector<Cookie> ParseCookieHeader(std::string_view header) {
  std::vector<Cookie> cookies;
  for (auto segment : Split(header, ';')) {
    std::string_view s = TrimWhitespace(segment);
    if (s.empty()) continue;
    Cookie c;
    size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      c.name = std::string(s);
      c.has_value = false;
    } else {
      c.name = std::string(TrimWhitespace(s.substr(0, eq)));
      c.value = std::string(TrimWhitespace(s.substr(eq + 1)));
    }
    cookies.push_back(std::move(c));
  }
  return cookies;
}

std::string SerializeCookies(const std::vector<Cookie>& cookies) {
  std::string out;
  for (const Cookie& c : cookies) {
    if (!out.empty()) out += "; ";
    out += c.name;
    if (c.has_value) {
      out += '=';
      out += c.value;
    }
  }
  return out;
}

}  // namespace leakdet::http
