#include "http/parser.h"

#include <array>

#include "util/strutil.h"

namespace leakdet::http {

namespace {

/// Consumes one line (up to CRLF or LF) from `*rest`; the line itself
/// excludes the terminator. Returns false when no terminator remains.
bool NextLine(std::string_view* rest, std::string_view* line) {
  size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) return false;
  size_t end = nl;
  if (end > 0 && (*rest)[end - 1] == '\r') --end;
  *line = rest->substr(0, end);
  rest->remove_prefix(nl + 1);
  return true;
}

bool IsTokenChar(char c) {
  // RFC 7230 token characters.
  if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  constexpr std::string_view kSpecials = "!#$%&'*+-.^_`|~";
  return kSpecials.find(c) != std::string_view::npos;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

}  // namespace

bool IsSupportedMethod(std::string_view method) {
  constexpr std::array<std::string_view, 5> kMethods = {
      "GET", "POST", "HEAD", "PUT", "DELETE"};
  for (auto m : kMethods) {
    if (method == m) return true;
  }
  return false;
}

StatusOr<HttpRequest> ParseRequest(std::string_view raw) {
  std::string_view rest = raw;
  std::string_view line;
  if (!NextLine(&rest, &line)) {
    return Status::InvalidArgument("missing request line terminator");
  }

  // Request line: METHOD SP target SP version — exactly two spaces.
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Status::InvalidArgument("request line: missing first space");
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return Status::InvalidArgument("request line: missing second space");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    return Status::InvalidArgument("request line: bad method token");
  }
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    return Status::InvalidArgument("request line: bad target");
  }
  if (!version.starts_with("HTTP/") || version.size() != 8 ||
      version[6] != '.' || version[5] < '0' || version[5] > '9' ||
      version[7] < '0' || version[7] > '9') {
    return Status::InvalidArgument("request line: bad HTTP version");
  }

  HttpRequest req{std::string(method), std::string(target),
                  std::string(version)};

  // Header block until the blank line.
  while (true) {
    if (!NextLine(&rest, &line)) {
      return Status::InvalidArgument("header block not terminated");
    }
    if (line.empty()) break;
    if (line[0] == ' ' || line[0] == '\t') {
      return Status::InvalidArgument("obs-fold header continuation rejected");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("header line without colon");
    }
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) {
      return Status::InvalidArgument("bad header field name");
    }
    std::string_view value = TrimWhitespace(line.substr(colon + 1));
    req.AddHeader(std::string(name), std::string(value));
  }

  // Body: remainder; Content-Length (when present) must agree.
  if (auto cl = req.FindHeader("Content-Length")) {
    auto parsed = ParseUint64(*cl);
    if (!parsed.ok()) {
      return Status::InvalidArgument("bad Content-Length value");
    }
    if (*parsed != rest.size()) {
      return Status::InvalidArgument("Content-Length does not match body");
    }
  }
  req.set_body(std::string(rest));
  return req;
}

}  // namespace leakdet::http
