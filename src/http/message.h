#ifndef LEAKDET_HTTP_MESSAGE_H_
#define LEAKDET_HTTP_MESSAGE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/url.h"

namespace leakdet::http {

/// A single HTTP header field. Name comparison is case-insensitive on
/// lookup; the wire casing is preserved.
struct HeaderField {
  std::string name;
  std::string value;
};

/// An HTTP/1.1 request message: the unit the paper's whole pipeline operates
/// on. Only requests matter here — the dataset is the GET/POST traffic the
/// applications *send*.
class HttpRequest {
 public:
  HttpRequest() = default;
  HttpRequest(std::string method, std::string target,
              std::string version = "HTTP/1.1")
      : method_(std::move(method)),
        target_(std::move(target)),
        version_(std::move(version)) {}

  const std::string& method() const { return method_; }
  const std::string& target() const { return target_; }
  const std::string& version() const { return version_; }
  const std::string& body() const { return body_; }
  const std::vector<HeaderField>& headers() const { return headers_; }

  void set_method(std::string m) { method_ = std::move(m); }
  void set_target(std::string t) { target_ = std::move(t); }
  void set_version(std::string v) { version_ = std::move(v); }
  void set_body(std::string b) { body_ = std::move(b); }

  /// Appends a header field (duplicates allowed, order preserved).
  void AddHeader(std::string name, std::string value);

  /// First header with the given name (case-insensitive), if any.
  std::optional<std::string_view> FindHeader(std::string_view name) const;

  /// Removes all headers with the given name; returns how many were removed.
  size_t RemoveHeader(std::string_view name);

  /// The Host header value, or "" if absent.
  std::string_view host() const;

  /// The Cookie header value, or "" if absent — one of the paper's three
  /// content components (§IV-C).
  std::string_view cookie() const;

  /// "METHOD target HTTP/1.1" — the paper's `rline` content component.
  std::string RequestLine() const;

  /// Path and raw query split out of the target.
  Target SplitRequestTarget() const { return SplitTarget(target_); }

  /// Full wire form: request line, headers, CRLF, body.
  std::string Serialize() const;

 private:
  std::string method_;
  std::string target_ = "/";
  std::string version_ = "HTTP/1.1";
  std::vector<HeaderField> headers_;
  std::string body_;
};

}  // namespace leakdet::http

#endif  // LEAKDET_HTTP_MESSAGE_H_
