#include "http/url.h"

#include "util/strutil.h"

namespace leakdet::http {

namespace {

bool IsUnreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string PercentEncode(std::string_view s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (IsUnreserved(c)) {
      out += c;
    } else {
      out += '%';
      out += kHex[static_cast<unsigned char>(c) >> 4];
      out += kHex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  return out;
}

StatusOr<std::string> PercentDecode(std::string_view s, PlusDecoding plus) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+' && plus == PlusDecoding::kSpace) {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= s.size()) {
        return Status::InvalidArgument("truncated percent escape");
      }
      int hi = HexNibble(s[i + 1]);
      int lo = HexNibble(s[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("non-hex percent escape");
      }
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

StatusOr<std::vector<QueryParam>> ParseQuery(std::string_view query) {
  std::vector<QueryParam> params;
  if (query.empty()) return params;
  for (auto field : Split(query, '&')) {
    QueryParam p;
    size_t eq = field.find('=');
    std::string_view raw_key = field;
    std::string_view raw_value;
    if (eq != std::string_view::npos) {
      raw_key = field.substr(0, eq);
      raw_value = field.substr(eq + 1);
    }
    // Query fields are form-urlencoded: here (and only here) '+' is a space.
    LEAKDET_ASSIGN_OR_RETURN(p.key,
                             PercentDecode(raw_key, PlusDecoding::kSpace));
    LEAKDET_ASSIGN_OR_RETURN(p.value,
                             PercentDecode(raw_value, PlusDecoding::kSpace));
    params.push_back(std::move(p));
  }
  return params;
}

std::string BuildQuery(const std::vector<QueryParam>& params) {
  std::string out;
  for (const QueryParam& p : params) {
    if (!out.empty()) out += '&';
    out += PercentEncode(p.key);
    out += '=';
    out += PercentEncode(p.value);
  }
  return out;
}

Target SplitTarget(std::string_view target) {
  Target t;
  size_t q = target.find('?');
  if (q == std::string_view::npos) {
    t.path = std::string(target);
  } else {
    t.path = std::string(target.substr(0, q));
    t.raw_query = std::string(target.substr(q + 1));
  }
  if (t.path.empty()) t.path = "/";
  return t;
}

}  // namespace leakdet::http
