#include "http/message.h"

#include "util/strutil.h"

namespace leakdet::http {

void HttpRequest::AddHeader(std::string name, std::string value) {
  headers_.push_back(HeaderField{std::move(name), std::move(value)});
}

std::optional<std::string_view> HttpRequest::FindHeader(
    std::string_view name) const {
  for (const HeaderField& h : headers_) {
    if (EqualsIgnoreCase(h.name, name)) return std::string_view(h.value);
  }
  return std::nullopt;
}

size_t HttpRequest::RemoveHeader(std::string_view name) {
  size_t removed = 0;
  for (size_t i = headers_.size(); i-- > 0;) {
    if (EqualsIgnoreCase(headers_[i].name, name)) {
      headers_.erase(headers_.begin() + static_cast<long>(i));
      ++removed;
    }
  }
  return removed;
}

std::string_view HttpRequest::host() const {
  return FindHeader("Host").value_or(std::string_view());
}

std::string_view HttpRequest::cookie() const {
  return FindHeader("Cookie").value_or(std::string_view());
}

std::string HttpRequest::RequestLine() const {
  std::string line;
  line.reserve(method_.size() + target_.size() + version_.size() + 2);
  line += method_;
  line += ' ';
  line += target_;
  line += ' ';
  line += version_;
  return line;
}

std::string HttpRequest::Serialize() const {
  std::string out = RequestLine();
  out += "\r\n";
  for (const HeaderField& h : headers_) {
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body_;
  return out;
}

}  // namespace leakdet::http
