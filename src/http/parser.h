#ifndef LEAKDET_HTTP_PARSER_H_
#define LEAKDET_HTTP_PARSER_H_

#include <string_view>

#include "http/message.h"
#include "util/statusor.h"

namespace leakdet::http {

/// Parses a complete HTTP/1.1 request (request line, header block, body).
///
/// Strictness matches what a traffic-capture pipeline needs:
///  - request line must be `METHOD SP target SP HTTP/x.y`;
///  - header lines must be `name: value` with a token name;
///  - obs-fold (leading whitespace continuation lines) is rejected;
///  - if Content-Length is present it must be a valid integer equal to the
///    remaining byte count; otherwise the remainder after the blank line is
///    the body.
/// Lenient in one dimension: bare-LF line endings are accepted alongside
/// CRLF, since app traffic in the wild contains both.
StatusOr<HttpRequest> ParseRequest(std::string_view raw);

/// True for the request methods the paper's dataset contains.
bool IsSupportedMethod(std::string_view method);

}  // namespace leakdet::http

#endif  // LEAKDET_HTTP_PARSER_H_
