#include "eval/experiment.h"

namespace leakdet::eval {

ConfusionCounts EvaluateDetector(const core::Detector& detector,
                                 const sim::Trace& trace, size_t sample_size) {
  ConfusionCounts c;
  c.sample_size = sample_size;
  for (const sim::LabeledPacket& lp : trace.packets) {
    bool flagged = detector.IsSensitive(lp.packet);
    if (lp.sensitive()) {
      c.sensitive_total++;
      if (flagged) c.detected_sensitive++;
    } else {
      c.normal_total++;
      if (flagged) c.detected_normal++;
    }
  }
  return c;
}

std::vector<TypeDetection> PerTypeDetection(const core::Detector& detector,
                                            const sim::Trace& trace) {
  std::vector<TypeDetection> rows(core::kNumSensitiveTypes);
  for (int t = 0; t < core::kNumSensitiveTypes; ++t) {
    rows[static_cast<size_t>(t)].type = static_cast<core::SensitiveType>(t);
  }
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (!lp.sensitive()) continue;
    bool flagged = detector.IsSensitive(lp.packet);
    for (core::SensitiveType t : lp.truth) {
      TypeDetection& row = rows[static_cast<size_t>(t)];
      row.total++;
      if (flagged) row.detected++;
    }
  }
  return rows;
}

StatusOr<std::vector<SweepPoint>> RunDetectionSweep(
    const sim::Trace& trace, const std::vector<size_t>& sample_sizes,
    const core::PipelineOptions& base_options) {
  std::vector<core::HttpPacket> suspicious;
  std::vector<core::HttpPacket> normal;
  trace.SplitByTruth(&suspicious, &normal);

  std::vector<SweepPoint> points;
  for (size_t i = 0; i < sample_sizes.size(); ++i) {
    core::PipelineOptions options = base_options;
    options.sample_size = sample_sizes[i];
    options.seed = base_options.seed + i * 0x9E37u;

    LEAKDET_ASSIGN_OR_RETURN(core::PipelineResult result,
                             core::RunPipeline(suspicious, normal, options));

    core::Detector detector(std::move(result.signatures),
                            options.siggen.scope_by_host);
    SweepPoint point;
    point.n = std::min(sample_sizes[i], suspicious.size());
    point.num_signatures = detector.signatures().size();
    point.num_clusters = result.clusters.size();
    point.counts = EvaluateDetector(detector, trace, point.n);
    point.paper = ComputePaperRates(point.counts);
    point.standard = ComputeStandardRates(point.counts);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace leakdet::eval
