#ifndef LEAKDET_EVAL_ROC_H_
#define LEAKDET_EVAL_ROC_H_

#include <vector>

#include "match/bayes_signature.h"
#include "sim/trafficgen.h"

namespace leakdet::eval {

/// One operating point of a threshold sweep.
struct RocPoint {
  double threshold_offset = 0;  ///< added to every signature's threshold
  double recall = 0;            ///< detected sensitive / all sensitive
  double fpr = 0;               ///< flagged normal / all normal
};

/// Per-packet decision margin: max over signatures of (score - threshold).
/// A packet is flagged at offset t iff its margin >= t, so one margin pass
/// supports arbitrarily many operating points.
std::vector<double> BayesMargins(const match::BayesSignatureSet& signatures,
                                 const std::vector<sim::LabeledPacket>& packets);

/// Sweeps the shared threshold offset over `offsets` (any order) and returns
/// one ROC point per offset. This is the knob a deployment turns to trade
/// missed leaks against user-prompt fatigue — a capability conjunction
/// signatures fundamentally lack (they are all-or-nothing).
std::vector<RocPoint> BayesRocSweep(
    const match::BayesSignatureSet& signatures,
    const std::vector<sim::LabeledPacket>& packets,
    const std::vector<double>& offsets);

/// Area under the ROC curve by trapezoid rule over the given points
/// (sorted internally by FPR). Degenerate sweeps (single point) return 0.
double RocAuc(std::vector<RocPoint> points);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_ROC_H_
