#include "eval/cluster_quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace leakdet::eval {

double CopheneticCorrelation(const core::DistanceMatrix& distances,
                             const core::Dendrogram& dendrogram) {
  const size_t n = distances.size();
  if (n < 2) return 0.0;
  // Collect both vectors over all pairs.
  std::vector<double> original;
  std::vector<double> cophenetic;
  original.reserve(n * (n - 1) / 2);
  cophenetic.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      original.push_back(distances.at(i, j));
      cophenetic.push_back(dendrogram.CopheneticDistance(
          static_cast<int32_t>(i), static_cast<int32_t>(j)));
    }
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  double mo = mean(original);
  double mc = mean(cophenetic);
  double num = 0, so = 0, sc = 0;
  for (size_t k = 0; k < original.size(); ++k) {
    double a = original[k] - mo;
    double b = cophenetic[k] - mc;
    num += a * b;
    so += a * a;
    sc += b * b;
  }
  if (so <= 0 || sc <= 0) return 0.0;
  return num / std::sqrt(so * sc);
}

std::vector<double> PointSilhouettes(
    const core::DistanceMatrix& distances,
    const std::vector<std::vector<int32_t>>& clusters) {
  std::vector<double> silhouettes;
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (int32_t p : clusters[c]) {
      if (clusters[c].size() <= 1) {
        silhouettes.push_back(0.0);
        continue;
      }
      // a = mean intra-cluster distance (excluding self).
      double a = 0;
      for (int32_t q : clusters[c]) {
        if (q == p) continue;
        a += distances.at(static_cast<size_t>(p), static_cast<size_t>(q));
      }
      a /= static_cast<double>(clusters[c].size() - 1);
      // b = min over other clusters of the mean distance to that cluster.
      double b = std::numeric_limits<double>::infinity();
      for (size_t d = 0; d < clusters.size(); ++d) {
        if (d == c || clusters[d].empty()) continue;
        double sum = 0;
        for (int32_t q : clusters[d]) {
          sum += distances.at(static_cast<size_t>(p), static_cast<size_t>(q));
        }
        b = std::min(b, sum / static_cast<double>(clusters[d].size()));
      }
      if (!std::isfinite(b)) {
        silhouettes.push_back(0.0);  // only one cluster exists
        continue;
      }
      double denom = std::max(a, b);
      silhouettes.push_back(denom > 0 ? (b - a) / denom : 0.0);
    }
  }
  return silhouettes;
}

double MeanSilhouette(const core::DistanceMatrix& distances,
                      const std::vector<std::vector<int32_t>>& clusters) {
  std::vector<double> s = PointSilhouettes(distances, clusters);
  if (s.empty()) return 0.0;
  double sum = 0;
  for (double v : s) sum += v;
  return sum / static_cast<double>(s.size());
}

}  // namespace leakdet::eval
