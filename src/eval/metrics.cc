#include "eval/metrics.h"

#include <algorithm>

namespace leakdet::eval {

DetectionRates ComputePaperRates(const ConfusionCounts& c) {
  DetectionRates r;
  double sens_minus_n = static_cast<double>(c.sensitive_total) -
                        static_cast<double>(c.sample_size);
  double norm_minus_n = static_cast<double>(c.normal_total) -
                        static_cast<double>(c.sample_size);
  if (sens_minus_n > 0) {
    double detected_minus_n = static_cast<double>(c.detected_sensitive) -
                              static_cast<double>(c.sample_size);
    r.tp = std::max(0.0, detected_minus_n) / sens_minus_n;
    double undetected = static_cast<double>(c.sensitive_total) -
                        static_cast<double>(c.detected_sensitive);
    r.fn = std::max(0.0, undetected) / sens_minus_n;
  }
  if (norm_minus_n > 0) {
    r.fp = static_cast<double>(c.detected_normal) / norm_minus_n;
  }
  return r;
}

StandardRates ComputeStandardRates(const ConfusionCounts& c) {
  StandardRates r;
  if (c.sensitive_total > 0) {
    r.recall = static_cast<double>(c.detected_sensitive) /
               static_cast<double>(c.sensitive_total);
  }
  if (c.normal_total > 0) {
    r.fpr = static_cast<double>(c.detected_normal) /
            static_cast<double>(c.normal_total);
  }
  double flagged = static_cast<double>(c.detected_sensitive) +
                   static_cast<double>(c.detected_normal);
  if (flagged > 0) {
    r.precision = static_cast<double>(c.detected_sensitive) / flagged;
  }
  if (r.precision + r.recall > 0) {
    r.f1 = 2 * r.precision * r.recall / (r.precision + r.recall);
  }
  return r;
}

}  // namespace leakdet::eval
