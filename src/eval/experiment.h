#ifndef LEAKDET_EVAL_EXPERIMENT_H_
#define LEAKDET_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "eval/metrics.h"
#include "sim/trafficgen.h"
#include "util/statusor.h"

namespace leakdet::eval {

/// One point of the Figure 4 sweep.
struct SweepPoint {
  size_t n = 0;  ///< sample size N
  ConfusionCounts counts;
  DetectionRates paper;       ///< the paper's §V-B formulas
  StandardRates standard;     ///< conventional recall/FPR for cross-checking
  size_t num_signatures = 0;
  size_t num_clusters = 0;
};

/// Runs the paper's §V experiment on a labeled trace: split by ground truth,
/// then for each N in `sample_sizes` run the pipeline and apply the
/// signatures back to the whole dataset.
///
/// `base_options.sample_size` is overridden per sweep point; `seed` is offset
/// per point so each N draws an independent sample (as in the paper's
/// independent runs).
StatusOr<std::vector<SweepPoint>> RunDetectionSweep(
    const sim::Trace& trace, const std::vector<size_t>& sample_sizes,
    const core::PipelineOptions& base_options);

/// Evaluates one already-built detector against a labeled trace.
ConfusionCounts EvaluateDetector(const core::Detector& detector,
                                 const sim::Trace& trace, size_t sample_size);

/// Per-sensitive-type detection coverage: how many packets carrying each
/// Table III category the detector catches. A packet with two identifier
/// types counts toward both rows.
struct TypeDetection {
  core::SensitiveType type;
  size_t total = 0;
  size_t detected = 0;

  double rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};
std::vector<TypeDetection> PerTypeDetection(const core::Detector& detector,
                                            const sim::Trace& trace);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_EXPERIMENT_H_
