#ifndef LEAKDET_EVAL_METRICS_H_
#define LEAKDET_EVAL_METRICS_H_

#include <cstddef>

namespace leakdet::eval {

/// Raw detection counts over a labeled dataset.
struct ConfusionCounts {
  size_t sensitive_total = 0;      ///< ground-truth positives in the dataset
  size_t normal_total = 0;         ///< ground-truth negatives
  size_t detected_sensitive = 0;   ///< positives flagged by the detector
  size_t detected_normal = 0;      ///< negatives flagged (false alarms)
  size_t sample_size = 0;          ///< N, the signature-generation sample
};

/// Detection rates computed with the paper's exact §V-B formulas:
///   TP = (detected_sensitive - N) / (sensitive_total - N)
///   FN =  undetected_sensitive    / (sensitive_total - N)
///   FP =  detected_normal         / (normal_total - N)
/// Note the idiosyncrasies faithfully reproduced: the sample N is subtracted
/// from numerator and denominator of TP (training packets excluded), and the
/// paper also subtracts N in the FP denominator even though the sample was
/// drawn from the sensitive group.
struct DetectionRates {
  double tp = 0;  ///< true-positive rate, in [0, 1]
  double fn = 0;  ///< false-negative rate
  double fp = 0;  ///< false-positive rate
};

/// Computes the paper's rates from raw counts. Degenerate denominators
/// (<= 0) yield zero rates.
DetectionRates ComputePaperRates(const ConfusionCounts& counts);

/// Standard (non-paper) rates for cross-checking: recall over all
/// positives, FPR over all negatives, plus precision and F1.
struct StandardRates {
  double recall = 0;
  double fpr = 0;
  double precision = 0;
  double f1 = 0;
};
StandardRates ComputeStandardRates(const ConfusionCounts& counts);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_METRICS_H_
