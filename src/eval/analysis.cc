#include "eval/analysis.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "net/host.h"

namespace leakdet::eval {

std::vector<DomainStats> ComputeDomainStats(const sim::Trace& trace,
                                            size_t min_apps) {
  struct Acc {
    size_t packets = 0;
    std::unordered_set<uint32_t> apps;
  };
  std::unordered_map<std::string, Acc> by_domain;
  for (const sim::LabeledPacket& lp : trace.packets) {
    std::string domain = net::RegistrableDomain(lp.packet.destination.host);
    Acc& acc = by_domain[domain];
    acc.packets++;
    acc.apps.insert(lp.packet.app_id);
  }
  std::vector<DomainStats> stats;
  stats.reserve(by_domain.size());
  for (auto& [domain, acc] : by_domain) {
    if (acc.apps.size() < min_apps) continue;
    stats.push_back(DomainStats{domain, acc.packets, acc.apps.size()});
  }
  std::sort(stats.begin(), stats.end(),
            [](const DomainStats& a, const DomainStats& b) {
              if (a.apps != b.apps) return a.apps > b.apps;
              return a.packets > b.packets;
            });
  return stats;
}

std::vector<SensitiveTypeStats> ComputeSensitiveStats(const sim::Trace& trace,
                                                      size_t* suspicious_total,
                                                      size_t* normal_total) {
  core::PayloadCheck oracle({trace.device.ToTokens()});
  struct Acc {
    size_t packets = 0;
    std::unordered_set<uint32_t> apps;
    std::unordered_set<std::string> destinations;
  };
  std::vector<Acc> acc(core::kNumSensitiveTypes);
  size_t suspicious = 0;
  size_t normal = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    std::vector<core::SensitiveType> types = oracle.Check(lp.packet);
    if (types.empty()) {
      ++normal;
      continue;
    }
    ++suspicious;
    for (core::SensitiveType t : types) {
      Acc& a = acc[static_cast<size_t>(t)];
      a.packets++;
      a.apps.insert(lp.packet.app_id);
      a.destinations.insert(lp.packet.destination.host);
    }
  }
  if (suspicious_total) *suspicious_total = suspicious;
  if (normal_total) *normal_total = normal;

  std::vector<SensitiveTypeStats> stats;
  for (int t = 0; t < core::kNumSensitiveTypes; ++t) {
    stats.push_back(SensitiveTypeStats{
        static_cast<core::SensitiveType>(t), acc[static_cast<size_t>(t)].packets,
        acc[static_cast<size_t>(t)].apps.size(),
        acc[static_cast<size_t>(t)].destinations.size()});
  }
  return stats;
}

double DestinationDistribution::CumulativeAt(int k) const {
  if (dests_per_app.empty()) return 0;
  size_t count = 0;
  for (int d : dests_per_app) {
    if (d <= k) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(dests_per_app.size());
}

DestinationDistribution ComputeDestinationDistribution(
    const sim::Trace& trace) {
  std::unordered_map<uint32_t, std::unordered_set<std::string>> hosts_by_app;
  for (const sim::LabeledPacket& lp : trace.packets) {
    hosts_by_app[lp.packet.app_id].insert(lp.packet.destination.host);
  }
  DestinationDistribution dist;
  double total = 0;
  for (auto& [app, hosts] : hosts_by_app) {
    int d = static_cast<int>(hosts.size());
    dist.dests_per_app.push_back(d);
    total += d;
    if (d == 1) dist.apps_with_one++;
    dist.max = std::max(dist.max, d);
  }
  std::sort(dist.dests_per_app.begin(), dist.dests_per_app.end());
  if (!dist.dests_per_app.empty()) {
    dist.mean = total / static_cast<double>(dist.dests_per_app.size());
    dist.frac_up_to_10 = dist.CumulativeAt(10);
    dist.frac_up_to_16 = dist.CumulativeAt(16);
  }
  return dist;
}

}  // namespace leakdet::eval
