#ifndef LEAKDET_EVAL_CLUSTER_QUALITY_H_
#define LEAKDET_EVAL_CLUSTER_QUALITY_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/hcluster.h"

namespace leakdet::eval {

/// Cophenetic correlation coefficient: Pearson correlation between the
/// original pairwise distances and the dendrogram's cophenetic distances.
/// Values near 1 mean the hierarchy faithfully preserves the metric — a
/// standard check that group-average linkage suits the §IV-B/C distance.
/// Returns 0 for fewer than 2 points or degenerate (constant) distances.
double CopheneticCorrelation(const core::DistanceMatrix& distances,
                             const core::Dendrogram& dendrogram);

/// Mean silhouette coefficient of a flat clustering (clusters of point
/// indices, as produced by Dendrogram::CutAtHeight) under `distances`.
/// Singleton clusters contribute silhouette 0 (the usual convention).
/// Range [-1, 1]; higher = tighter, better-separated clusters.
double MeanSilhouette(const core::DistanceMatrix& distances,
                      const std::vector<std::vector<int32_t>>& clusters);

/// Silhouette of each point (same layout as the flattened cluster order);
/// exposed for diagnostics plots.
std::vector<double> PointSilhouettes(
    const core::DistanceMatrix& distances,
    const std::vector<std::vector<int32_t>>& clusters);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_CLUSTER_QUALITY_H_
