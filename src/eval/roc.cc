#include "eval/roc.h"

#include <algorithm>
#include <limits>

#include "core/packet.h"

namespace leakdet::eval {

std::vector<double> BayesMargins(
    const match::BayesSignatureSet& signatures,
    const std::vector<sim::LabeledPacket>& packets) {
  std::vector<double> margins;
  margins.reserve(packets.size());
  for (const sim::LabeledPacket& lp : packets) {
    std::vector<double> scores =
        signatures.Scores(core::PacketContent(lp.packet));
    double best = -std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < scores.size(); ++s) {
      if (signatures.signatures()[s].tokens.empty()) continue;
      best = std::max(best,
                      scores[s] - signatures.signatures()[s].threshold);
    }
    margins.push_back(best);
  }
  return margins;
}

std::vector<RocPoint> BayesRocSweep(
    const match::BayesSignatureSet& signatures,
    const std::vector<sim::LabeledPacket>& packets,
    const std::vector<double>& offsets) {
  std::vector<double> margins = BayesMargins(signatures, packets);
  size_t sensitive_total = 0, normal_total = 0;
  for (const sim::LabeledPacket& lp : packets) {
    (lp.sensitive() ? sensitive_total : normal_total)++;
  }
  std::vector<RocPoint> points;
  points.reserve(offsets.size());
  for (double offset : offsets) {
    size_t tp = 0, fp = 0;
    for (size_t i = 0; i < packets.size(); ++i) {
      if (margins[i] >= offset) {
        (packets[i].sensitive() ? tp : fp)++;
      }
    }
    RocPoint p;
    p.threshold_offset = offset;
    if (sensitive_total > 0) {
      p.recall = static_cast<double>(tp) /
                 static_cast<double>(sensitive_total);
    }
    if (normal_total > 0) {
      p.fpr = static_cast<double>(fp) / static_cast<double>(normal_total);
    }
    points.push_back(p);
  }
  return points;
}

double RocAuc(std::vector<RocPoint> points) {
  if (points.size() < 2) return 0.0;
  std::sort(points.begin(), points.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.fpr != b.fpr) return a.fpr < b.fpr;
              return a.recall < b.recall;
            });
  double auc = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    double dx = points[i].fpr - points[i - 1].fpr;
    auc += dx * (points[i].recall + points[i - 1].recall) / 2.0;
  }
  // Extend to (1,1) from the last point (everything flagged beyond).
  auc += (1.0 - points.back().fpr) * (points.back().recall + 1.0) / 2.0;
  // And from (0,0) to the first point.
  auc += points.front().fpr * points.front().recall / 2.0;
  return auc;
}

}  // namespace leakdet::eval
