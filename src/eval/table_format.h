#ifndef LEAKDET_EVAL_TABLE_FORMAT_H_
#define LEAKDET_EVAL_TABLE_FORMAT_H_

#include <string>
#include <vector>

namespace leakdet::eval {

/// Minimal fixed-width table printer for the bench reports (paper row vs
/// measured row side by side).
class TablePrinter {
 public:
  /// Column headers define the column count.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with padded columns, a header underline, and '|' separators.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `decimals` fractional digits.
std::string FormatDouble(double value, int decimals = 1);

/// Formats a fraction as a percentage string ("93.4%").
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_TABLE_FORMAT_H_
