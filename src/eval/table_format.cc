#include "eval/table_format.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace leakdet::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '|';
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

}  // namespace leakdet::eval
