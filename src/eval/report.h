#ifndef LEAKDET_EVAL_REPORT_H_
#define LEAKDET_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "sim/trafficgen.h"
#include "util/statusor.h"

namespace leakdet::eval {

/// Options for the study report.
struct ReportOptions {
  /// Detection sweep sample sizes (empty = skip the detection section).
  std::vector<size_t> sample_sizes = {100, 200, 300};
  core::PipelineOptions pipeline;
  /// How many destination rows to include.
  size_t max_domains = 15;
};

/// Renders a complete markdown study of a labeled trace, in the structure of
/// the paper's evaluation: dataset summary, permission mix (§III-A),
/// destination fan-out (Fig. 2), top destinations (Table II), sensitive
/// information mix (Table III), and the detection sweep (Fig. 4). One call,
/// one self-contained artifact — the CLI's `report` command.
StatusOr<std::string> GenerateMarkdownReport(const sim::Trace& trace,
                                             const ReportOptions& options = {});

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_REPORT_H_
