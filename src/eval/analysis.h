#ifndef LEAKDET_EVAL_ANALYSIS_H_
#define LEAKDET_EVAL_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "sim/trafficgen.h"

namespace leakdet::eval {

/// Per-destination-domain traffic statistics (the measured analogue of
/// Table II).
struct DomainStats {
  std::string domain;
  size_t packets = 0;
  size_t apps = 0;
};

/// Table II analogue: packet and app counts per registrable domain, ordered
/// by descending app count (as in the paper). `min_apps` filters the long
/// tail out of the report.
std::vector<DomainStats> ComputeDomainStats(const sim::Trace& trace,
                                            size_t min_apps = 0);

/// Per-sensitive-type statistics (the measured analogue of Table III),
/// computed with the PayloadCheck oracle built from the trace's device.
struct SensitiveTypeStats {
  core::SensitiveType type;
  size_t packets = 0;
  size_t apps = 0;
  size_t destinations = 0;  ///< distinct full host names
};

/// Table III analogue. Also returns the overall suspicious/normal split via
/// the out-parameters when non-null.
std::vector<SensitiveTypeStats> ComputeSensitiveStats(
    const sim::Trace& trace, size_t* suspicious_total = nullptr,
    size_t* normal_total = nullptr);

/// Figure 2 analogue: the distribution of distinct destinations per app.
struct DestinationDistribution {
  std::vector<int> dests_per_app;  ///< one entry per app with >= 1 packet
  size_t apps_with_one = 0;
  double frac_up_to_10 = 0;
  double frac_up_to_16 = 0;
  double mean = 0;
  int max = 0;

  /// Cumulative fraction of apps with <= k destinations.
  double CumulativeAt(int k) const;
};
DestinationDistribution ComputeDestinationDistribution(
    const sim::Trace& trace);

}  // namespace leakdet::eval

#endif  // LEAKDET_EVAL_ANALYSIS_H_
