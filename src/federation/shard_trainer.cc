#include "federation/shard_trainer.h"

#include <unordered_set>
#include <utility>

namespace leakdet::federation {

ShardTrainer::ShardTrainer(const ShardTrainerOptions& options,
                           const core::PayloadCheck* oracle)
    : options_(options), oracle_(oracle) {}

void ShardTrainer::Observe(uint64_t device_key,
                           const core::HttpPacket& packet) {
  ++observed_;
  uint64_t hash = DeviceWitnessHash(device_key);
  ObserveDevice(&devices_, hash);
  if (corpus_.size() >= options_.max_corpus) return;
  if (oracle_->IsSensitive(packet)) {
    suspicious_.push_back(packet);
  } else {
    normal_.push_back(packet);
  }
  corpus_.push_back({hash, core::PacketContent(packet)});
}

StatusOr<ShardExport> ShardTrainer::Train() const {
  auto result = core::RunPipeline(suspicious_, normal_, options_.pipeline);
  if (!result.ok()) return result.status();

  ShardExport shard;
  shard.tenant = options_.tenant;
  shard.witness_cap = options_.witness_cap;
  shard.candidates = Canonicalize(result->signatures);
  shard.devices = devices_;
  shard.max_shard_packets = observed_;

  std::unordered_set<std::string> seen;
  std::vector<std::string> tokens;
  for (const match::ConjunctionSignature& sig :
       shard.candidates.signatures()) {
    for (const std::string& token : sig.tokens) {
      if (seen.insert(token).second) tokens.push_back(token);
    }
  }
  shard.witness = BuildWitnessTable(tokens, corpus_, options_.witness_cap);
  return shard;
}

}  // namespace leakdet::federation
