#ifndef LEAKDET_FEDERATION_EVAL_H_
#define LEAKDET_FEDERATION_EVAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/packet.h"

namespace leakdet::federation {

/// Side-by-side evidence that federated training lost nothing: the merged
/// feed and the central oracle replayed over the same held-out traffic,
/// verdict by verdict, plus each side's confusion counts against ground
/// truth.
struct Scoreboard {
  size_t replayed = 0;
  /// Packets where merged and central verdicts differ — the headline
  /// number; zero means verdict-identical.
  size_t disagreements = 0;
  /// Disagreement breakdown: merged flagged / central did not, and the
  /// reverse.
  size_t merged_only = 0;
  size_t central_only = 0;

  struct Side {
    size_t signatures = 0;
    size_t true_positives = 0;
    size_t false_positives = 0;
    size_t false_negatives = 0;
    size_t true_negatives = 0;
  };
  Side merged;
  Side central;

  bool VerdictIdentical() const { return disagreements == 0; }
};

/// A labeled held-out packet (`sensitive` = ground truth from the traffic
/// generator or payload-check oracle).
struct LabeledReplayPacket {
  core::HttpPacket packet;
  bool sensitive = false;
};

/// Replays `holdout` through both detectors and tallies the scoreboard.
Scoreboard CompareOnReplay(const core::Detector& merged,
                           const core::Detector& central,
                           const std::vector<LabeledReplayPacket>& holdout);

/// Human-readable scoreboard (the `leakdet federate --eval` output).
std::string FormatScoreboard(const Scoreboard& board);

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_EVAL_H_
