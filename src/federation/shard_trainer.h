#ifndef LEAKDET_FEDERATION_SHARD_TRAINER_H_
#define LEAKDET_FEDERATION_SHARD_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "core/pipeline.h"
#include "federation/merge.h"
#include "federation/witness.h"
#include "util/statusor.h"

namespace leakdet::federation {

struct ShardTrainerOptions {
  /// Namespace this shard trains for (one signature lineage per tenant).
  std::string tenant;
  /// Training pipeline knobs; `seed` should differ per shard only if you
  /// want it to — determinism of the federated feed comes from the merge
  /// protocol, not from shared seeds.
  core::PipelineOptions pipeline;
  /// Witness-set truncation (must match across every shard of a tenant).
  size_t witness_cap = WitnessTable::kDefaultCap;
  /// Retention bound on the observed corpus. Observations past the cap are
  /// dropped (count still reflected in max_shard_packets); sized so the
  /// witness scan and training stay in memory at fleet scale.
  size_t max_corpus = 200000;
};

/// Trains one shard of a federated deployment: observes the traffic of a
/// disjoint subset of devices, splits it with the payload-check oracle,
/// trains candidate signatures locally, and exports them together with the
/// per-token distinct-device witness evidence the fleet-wide K-anonymity
/// gate needs. Not thread-safe; one trainer per shard thread.
class ShardTrainer {
 public:
  ShardTrainer(const ShardTrainerOptions& options,
               const core::PayloadCheck* oracle);

  /// Records one packet emitted by `device_key` (an opaque stable device
  /// identity; hashed before it enters any export).
  void Observe(uint64_t device_key, const core::HttpPacket& packet);

  /// Runs the training pipeline over everything observed and assembles the
  /// shard's export. The witness table covers every candidate token over
  /// the *whole* retained corpus (suspicious and normal traffic alike): a
  /// device witnesses a token by emitting it anywhere, not only in packets
  /// that clustered.
  StatusOr<ShardExport> Train() const;

  size_t observed_packets() const { return observed_; }
  size_t suspicious_size() const { return suspicious_.size(); }
  size_t normal_size() const { return normal_.size(); }
  const ShardTrainerOptions& options() const { return options_; }

 private:
  ShardTrainerOptions options_;
  const core::PayloadCheck* oracle_;
  uint64_t observed_ = 0;
  std::vector<core::HttpPacket> suspicious_;
  std::vector<core::HttpPacket> normal_;
  /// (device hash, content) for witness derivation, parallel to the union
  /// of the two pools above.
  std::vector<WitnessRecord> corpus_;
  std::vector<uint64_t> devices_;
};

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_SHARD_TRAINER_H_
