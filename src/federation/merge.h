#ifndef LEAKDET_FEDERATION_MERGE_H_
#define LEAKDET_FEDERATION_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "federation/witness.h"
#include "match/signature.h"
#include "util/statusor.h"

namespace leakdet::federation {

/// Everything one shard trainer contributes to a federated feed epoch:
/// candidate signatures trained on that shard's device population, plus the
/// per-token distinct-device evidence needed to run the K-anonymity gate
/// *after* merging (a token below K on every shard may still clear K
/// fleet-wide, and vice versa — the gate must see combined evidence).
///
/// Every field is a join-semilattice element, which is what makes Merge
/// commutative, associative, and idempotent by construction:
///   - candidates: set keyed by (host_scope, sorted-unique tokens),
///     cluster_size joined by max (max, not sum — a shard merged twice must
///     not double-count);
///   - witness: min-cap union (WitnessTable::MergeFrom);
///   - devices: min-cap union of distinct device hashes;
///   - max_shard_packets: max.
struct ShardExport {
  /// Devices participate in exactly one tenant's feed; Merge refuses to
  /// combine exports across tenants.
  std::string tenant;
  size_t witness_cap = WitnessTable::kDefaultCap;
  /// Candidate signatures in canonical form: per-signature tokens
  /// sorted-unique, signatures sorted by (host_scope, tokens), ids assigned
  /// positionally. `Canonicalize` produces this form.
  match::SignatureSet candidates;
  WitnessTable witness;
  /// Min-cap set of distinct device hashes this export draws on (capped at
  /// kDeviceSetCap smallest); DeviceCount is therefore a saturating lower
  /// bound on fleet coverage, reported on /statusz.
  std::vector<uint64_t> devices;
  /// Largest single-shard packet count folded into this export.
  uint64_t max_shard_packets = 0;

  static constexpr size_t kDeviceSetCap = 256;

  size_t DeviceCount() const { return devices.size(); }
};

/// Rewrites `set` into the canonical form Merge requires: tokens
/// sorted-unique within each signature, signatures deduplicated by
/// (host_scope, tokens) with cluster_size joined by max, sorted, and re-id'd
/// "sig-0000", "sig-0001", ... Union-match semantics are unchanged (token
/// order and duplicates never affect matching).
match::SignatureSet Canonicalize(const match::SignatureSet& set);

/// Records a device hash into a min-cap device set (sorted, distinct,
/// keeps the cap smallest). Exposed for the hub's live counters.
void ObserveDevice(std::vector<uint64_t>* devices, uint64_t device_hash,
                   size_t cap = ShardExport::kDeviceSetCap);

/// Joins two shard exports. Errors on tenant or witness-cap mismatch
/// (exports are only comparable within one tenant's protocol parameters).
StatusOr<ShardExport> Merge(const ShardExport& a, const ShardExport& b);

/// Folds `shards` left-to-right (order is irrelevant by the semilattice
/// laws). Errors on an empty list or any pairwise mismatch.
StatusOr<ShardExport> MergeAll(const std::vector<ShardExport>& shards);

/// Outcome counters for PublishFederated, surfaced as metrics.
struct PublishStats {
  size_t tokens_total = 0;
  /// Tokens generalized out because fewer than K distinct devices
  /// witnessed them (the K-anonymity gate treating them as PII).
  size_t tokens_suppressed = 0;
  /// Candidates dropped because *no* token survived the gate.
  size_t signatures_dropped = 0;
  /// Candidates absorbed by a weaker signature (strict token-superset of
  /// another candidate with the same host_scope — redundant under
  /// union-match semantics).
  size_t signatures_absorbed = 0;
  size_t signatures_published = 0;
};

/// Runs the K-anonymity gate over a merged export and emits the publishable
/// signature set: each candidate keeps only tokens witnessed by at least
/// `k_anonymity` distinct devices, empty candidates are dropped, absorbed
/// (strict-superset) candidates are removed, and the survivors are
/// canonicalized. Deterministic in the export alone; applying it twice is a
/// fixed point. `k_anonymity` must be <= witness_cap for the >= K decision
/// to be exact (values above the cap saturate to cap).
match::SignatureSet PublishFederated(const ShardExport& merged,
                                     size_t k_anonymity,
                                     PublishStats* stats = nullptr);

/// Text wire format for shard exports (versioned, hex-armored tokens), the
/// payload `leakdet federate --shard-export` writes and `--from-shards`
/// reads.
std::string SerializeShardExport(const ShardExport& shard);
StatusOr<ShardExport> ParseShardExport(const std::string& text);

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_MERGE_H_
