#include "federation/tenant_store.h"

#include <cctype>
#include <cstdio>
#include <utility>

namespace leakdet::federation {

namespace {

constexpr char kPrefix[] = "tenant-";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;

bool SafeChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
         c == '_' || c == '.';
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string TenantDirName(const std::string& tenant) {
  std::string out = kPrefix;
  for (char c : tenant) {
    if (SafeChar(c)) {
      out.push_back(c);
    } else {
      char esc[4];
      std::snprintf(esc, sizeof(esc), "%%%02X",
                    static_cast<unsigned char>(c));
      out += esc;
    }
  }
  return out;
}

StatusOr<std::string> TenantFromDirName(const std::string& dir_name) {
  if (dir_name.compare(0, kPrefixLen, kPrefix) != 0) {
    return Status::InvalidArgument("not a tenant directory: " + dir_name);
  }
  std::string out;
  for (size_t i = kPrefixLen; i < dir_name.size(); ++i) {
    char c = dir_name[i];
    if (c == '%') {
      if (i + 2 >= dir_name.size()) {
        return Status::InvalidArgument("truncated escape in: " + dir_name);
      }
      int hi = HexNibble(dir_name[i + 1]);
      int lo = HexNibble(dir_name[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad escape in: " + dir_name);
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> ListTenants(store::Dir* dir,
                                     const std::string& root) {
  std::vector<std::string> tenants;
  auto entries = dir->List(root);
  if (!entries.ok()) return tenants;
  for (const std::string& name : *entries) {
    auto tenant = TenantFromDirName(name);
    if (tenant.ok()) tenants.push_back(std::move(*tenant));
  }
  return tenants;  // sorted by directory name (List() sorts)
}

TenantStoreSet::TenantStoreSet(store::Dir* dir, std::string root,
                               store::StoreOptions options)
    : dir_(dir), root_(std::move(root)), options_(std::move(options)) {}

StatusOr<store::StoreManager*> TenantStoreSet::Open(
    const std::string& tenant) {
  auto it = stores_.find(tenant);
  if (it != stores_.end()) return it->second.get();
  if (!root_created_) {
    Status status = dir_->CreateDir(root_);
    if (!status.ok()) return status;
    root_created_ = true;
  }
  std::string path = root_ + "/" + TenantDirName(tenant);
  auto manager = store::StoreManager::Open(dir_, path, options_);
  if (!manager.ok()) return manager.status();
  store::StoreManager* raw = manager->get();
  stores_.emplace(tenant, std::move(*manager));
  return raw;
}

std::vector<std::string> TenantStoreSet::open_tenants() const {
  std::vector<std::string> tenants;
  tenants.reserve(stores_.size());
  for (const auto& [tenant, _] : stores_) tenants.push_back(tenant);
  return tenants;
}

}  // namespace leakdet::federation
