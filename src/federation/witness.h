#ifndef LEAKDET_FEDERATION_WITNESS_H_
#define LEAKDET_FEDERATION_WITNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace leakdet::federation {

/// Opaque 64-bit witness identity for one device. K-anonymity decisions only
/// need *distinct-device counts*, so shards exchange hashes, never raw
/// device keys, and a hash is all the merge protocol ever compares.
uint64_t DeviceWitnessHash(uint64_t device_key);

/// Per-token distinct-device evidence, the data behind the K-anonymity gate
/// (PrivacyProxy's crowdsourced frequency threshold): a token may enter a
/// published signature only if it was observed in the traffic of at least K
/// distinct devices.
///
/// Each token keeps the `cap` *smallest* distinct device hashes that
/// witnessed it. min-cap truncation makes the table a join-semilattice:
/// MergeFrom (set union, re-truncated) is commutative, associative, and
/// idempotent *by construction*, and it preserves every "distinct devices
/// >= K" decision exactly for K <= cap — if the true union holds >= K
/// distinct devices, at least the K smallest of them survive truncation on
/// every merge order. That is what lets shards trained on disjoint device
/// populations combine evidence without double-counting or ordering effects.
class WitnessTable {
 public:
  static constexpr size_t kDefaultCap = 64;

  explicit WitnessTable(size_t cap = kDefaultCap) : cap_(cap == 0 ? 1 : cap) {}

  /// Records that `device_hash` witnessed `token`.
  void Observe(const std::string& token, uint64_t device_hash);

  /// Distinct devices known to have witnessed `token` (saturates at cap()).
  size_t DistinctDevices(const std::string& token) const;

  /// Semilattice join: union per-token witness sets, truncated back to cap.
  /// Requires `other.cap() == cap()` (the protocol fixes the cap per tenant;
  /// mixing caps would break the >= K guarantee). Returns false on mismatch.
  bool MergeFrom(const WitnessTable& other);

  size_t cap() const { return cap_; }
  bool empty() const { return tokens_.empty(); }
  size_t num_tokens() const { return tokens_.size(); }

  /// Sorted (token -> sorted distinct hashes) view; canonical by
  /// construction, so serialization and equality are order-independent.
  const std::map<std::string, std::vector<uint64_t>>& tokens() const {
    return tokens_;
  }

  friend bool operator==(const WitnessTable& a, const WitnessTable& b) {
    return a.cap_ == b.cap_ && a.tokens_ == b.tokens_;
  }

 private:
  size_t cap_;
  /// token -> sorted, distinct device hashes, at most cap_ (the smallest).
  std::map<std::string, std::vector<uint64_t>> tokens_;
};

/// One retained observation: which device emitted which content. Shard
/// trainers keep a bounded corpus of these to derive witness sets for
/// whatever candidate tokens training produces.
struct WitnessRecord {
  uint64_t device_hash = 0;
  std::string content;
};

/// Builds the witness table for `tokens` over `corpus` in one multi-pattern
/// scan per record (Aho–Corasick over the distinct tokens): table[t] = the
/// min-cap set of distinct devices whose content contains t.
WitnessTable BuildWitnessTable(const std::vector<std::string>& tokens,
                               const std::vector<WitnessRecord>& corpus,
                               size_t cap = WitnessTable::kDefaultCap);

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_WITNESS_H_
