#include "federation/merge.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "util/strutil.h"

namespace leakdet::federation {

namespace {

/// Canonical identity of a candidate: where it applies and what it requires.
/// Everything else (id, cluster_size) is bookkeeping joined on collision.
using CandidateKey = std::pair<std::string, std::vector<std::string>>;

CandidateKey KeyOf(const match::ConjunctionSignature& sig) {
  std::vector<std::string> tokens = sig.tokens;
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return {sig.host_scope, std::move(tokens)};
}

match::SignatureSet FromCandidateMap(
    std::map<CandidateKey, uint32_t>&& candidates) {
  std::vector<match::ConjunctionSignature> out;
  out.reserve(candidates.size());
  size_t index = 0;
  for (auto& [key, cluster_size] : candidates) {
    match::ConjunctionSignature sig;
    char id[16];
    std::snprintf(id, sizeof(id), "sig-%04zu", index++);
    sig.id = id;
    sig.host_scope = key.first;
    sig.tokens = key.second;
    sig.cluster_size = cluster_size;
    out.push_back(std::move(sig));
  }
  return match::SignatureSet(std::move(out));
}

void AbsorbCandidates(std::map<CandidateKey, uint32_t>* candidates,
                      PublishStats* stats) {
  // A conjunction with MORE tokens is strictly harder to satisfy; if a
  // same-scope candidate exists whose tokens are a strict subset, every
  // packet the superset matches the subset matches too, so dropping the
  // superset leaves the set's union-match verdicts exactly unchanged.
  // Quadratic within a scope group, but candidate counts are small
  // (bounded by cluster count, typically tens).
  std::vector<std::map<CandidateKey, uint32_t>::iterator> absorbed;
  for (auto it = candidates->begin(); it != candidates->end(); ++it) {
    for (auto jt = candidates->begin(); jt != candidates->end(); ++jt) {
      if (it == jt || it->first.first != jt->first.first) continue;
      const std::vector<std::string>& sup = it->first.second;
      const std::vector<std::string>& sub = jt->first.second;
      if (sub.size() >= sup.size()) continue;
      if (std::includes(sup.begin(), sup.end(), sub.begin(), sub.end())) {
        // Fold the absorbed candidate's provenance into its absorber.
        jt->second = std::max(jt->second, it->second);
        absorbed.push_back(it);
        break;
      }
    }
  }
  for (auto it : absorbed) candidates->erase(it);
  if (stats != nullptr) stats->signatures_absorbed += absorbed.size();
}

}  // namespace

match::SignatureSet Canonicalize(const match::SignatureSet& set) {
  std::map<CandidateKey, uint32_t> candidates;
  for (const match::ConjunctionSignature& sig : set.signatures()) {
    CandidateKey key = KeyOf(sig);
    auto [it, inserted] = candidates.emplace(std::move(key), sig.cluster_size);
    if (!inserted) it->second = std::max(it->second, sig.cluster_size);
  }
  return FromCandidateMap(std::move(candidates));
}

void ObserveDevice(std::vector<uint64_t>* devices, uint64_t device_hash,
                   size_t cap) {
  auto it = std::lower_bound(devices->begin(), devices->end(), device_hash);
  if (it != devices->end() && *it == device_hash) return;
  if (devices->size() >= cap) {
    if (devices->empty() || device_hash > devices->back()) return;
    devices->pop_back();
    it = std::lower_bound(devices->begin(), devices->end(), device_hash);
  }
  devices->insert(it, device_hash);
}

StatusOr<ShardExport> Merge(const ShardExport& a, const ShardExport& b) {
  if (a.tenant != b.tenant) {
    return Status::InvalidArgument("shard tenant mismatch: '" + a.tenant +
                                   "' vs '" + b.tenant + "'");
  }
  if (a.witness_cap != b.witness_cap) {
    return Status::InvalidArgument(
        "shard witness cap mismatch: " + std::to_string(a.witness_cap) +
        " vs " + std::to_string(b.witness_cap));
  }
  ShardExport merged;
  merged.tenant = a.tenant;
  merged.witness_cap = a.witness_cap;

  std::map<CandidateKey, uint32_t> candidates;
  for (const ShardExport* shard : {&a, &b}) {
    for (const match::ConjunctionSignature& sig :
         shard->candidates.signatures()) {
      CandidateKey key = KeyOf(sig);
      auto [it, inserted] =
          candidates.emplace(std::move(key), sig.cluster_size);
      if (!inserted) it->second = std::max(it->second, sig.cluster_size);
    }
  }
  merged.candidates = FromCandidateMap(std::move(candidates));

  merged.witness = a.witness;
  merged.witness.MergeFrom(b.witness);  // caps verified equal above

  merged.devices = a.devices;
  for (uint64_t hash : b.devices) ObserveDevice(&merged.devices, hash);

  merged.max_shard_packets = std::max(a.max_shard_packets,
                                      b.max_shard_packets);
  return merged;
}

StatusOr<ShardExport> MergeAll(const std::vector<ShardExport>& shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("MergeAll: no shard exports");
  }
  ShardExport acc = shards.front();
  // Normalize even a single-shard export so downstream code always sees
  // canonical candidates regardless of how the shard was produced.
  acc.candidates = Canonicalize(acc.candidates);
  for (size_t i = 1; i < shards.size(); ++i) {
    auto merged = Merge(acc, shards[i]);
    if (!merged.ok()) return merged.status();
    acc = std::move(*merged);
  }
  return acc;
}

match::SignatureSet PublishFederated(const ShardExport& merged,
                                     size_t k_anonymity,
                                     PublishStats* stats) {
  if (k_anonymity == 0) k_anonymity = 1;
  std::map<CandidateKey, uint32_t> gated;
  PublishStats local;
  for (const match::ConjunctionSignature& sig :
       merged.candidates.signatures()) {
    match::ConjunctionSignature kept = sig;
    kept.tokens.clear();
    for (const std::string& token : sig.tokens) {
      ++local.tokens_total;
      if (merged.witness.DistinctDevices(token) >= k_anonymity) {
        kept.tokens.push_back(token);
      } else {
        // Below the crowd threshold: the value is particular to a handful
        // of devices (an identifier, not app structure) — generalize it out
        // rather than publish it in a crowd-visible signature feed.
        ++local.tokens_suppressed;
      }
    }
    if (kept.tokens.empty()) {
      ++local.signatures_dropped;
      continue;
    }
    CandidateKey key = KeyOf(kept);
    auto [it, inserted] = gated.emplace(std::move(key), kept.cluster_size);
    if (!inserted) it->second = std::max(it->second, kept.cluster_size);
  }
  AbsorbCandidates(&gated, &local);
  match::SignatureSet published = FromCandidateMap(std::move(gated));
  local.signatures_published = published.size();
  if (stats != nullptr) {
    stats->tokens_total += local.tokens_total;
    stats->tokens_suppressed += local.tokens_suppressed;
    stats->signatures_dropped += local.signatures_dropped;
    stats->signatures_absorbed += local.signatures_absorbed;
    stats->signatures_published += local.signatures_published;
  }
  return published;
}

namespace {

/// Hex armor for whitespace-split fields. The empty string hex-encodes to
/// nothing and would vanish under tokenization, so it gets a "-" sentinel
/// ("-" is not a hex digit, so the encoding stays unambiguous).
std::string HexArmor(const std::string& raw) {
  return raw.empty() ? "-" : HexEncode(raw);
}

StatusOr<std::string> HexUnarmor(const std::string& word) {
  if (word == "-") return std::string();
  return HexDecode(word);
}

}  // namespace

std::string SerializeShardExport(const ShardExport& shard) {
  std::ostringstream out;
  out << "leakdet-shard-export v1\n";
  out << "tenant " << HexArmor(shard.tenant) << "\n";
  out << "witness_cap " << shard.witness_cap << "\n";
  out << "max_shard_packets " << shard.max_shard_packets << "\n";
  out << "devices " << shard.devices.size();
  for (uint64_t hash : shard.devices) out << " " << hash;
  out << "\n";
  out << "witness " << shard.witness.num_tokens() << "\n";
  for (const auto& [token, hashes] : shard.witness.tokens()) {
    out << "w " << HexArmor(token) << " " << hashes.size();
    for (uint64_t hash : hashes) out << " " << hash;
    out << "\n";
  }
  const auto& sigs = shard.candidates.signatures();
  out << "candidates " << sigs.size() << "\n";
  for (const match::ConjunctionSignature& sig : sigs) {
    out << "c " << sig.cluster_size << " " << HexArmor(sig.host_scope)
        << " " << sig.tokens.size();
    for (const std::string& token : sig.tokens) {
      out << " " << HexArmor(token);
    }
    out << "\n";
  }
  return out.str();
}

namespace {

Status ParseError(const std::string& what) {
  return Status::InvalidArgument("shard export: " + what);
}

}  // namespace

StatusOr<ShardExport> ParseShardExport(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "leakdet-shard-export v1") {
    return ParseError("bad header");
  }
  ShardExport shard;
  std::string word;

  auto next_line = [&](const char* expect) -> StatusOr<std::istringstream> {
    if (!std::getline(in, line)) {
      return ParseError(std::string("missing ") + expect);
    }
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag != expect) {
      return ParseError(std::string("expected '") + expect + "' line");
    }
    return ls;
  };

  auto tenant_ls = next_line("tenant");
  if (!tenant_ls.ok()) return tenant_ls.status();
  if (!(*tenant_ls >> word)) return ParseError("bad tenant");
  auto tenant = HexUnarmor(word);
  if (!tenant.ok()) return tenant.status();
  shard.tenant = std::move(*tenant);

  auto cap_ls = next_line("witness_cap");
  if (!cap_ls.ok()) return cap_ls.status();
  size_t cap = 0;
  if (!(*cap_ls >> cap) || cap == 0) return ParseError("bad witness_cap");
  shard.witness_cap = cap;
  shard.witness = WitnessTable(cap);

  auto pkts_ls = next_line("max_shard_packets");
  if (!pkts_ls.ok()) return pkts_ls.status();
  if (!(*pkts_ls >> shard.max_shard_packets)) {
    return ParseError("bad max_shard_packets");
  }

  auto dev_ls = next_line("devices");
  if (!dev_ls.ok()) return dev_ls.status();
  size_t num_devices = 0;
  if (!(*dev_ls >> num_devices)) return ParseError("bad devices count");
  for (size_t i = 0; i < num_devices; ++i) {
    uint64_t hash = 0;
    if (!(*dev_ls >> hash)) return ParseError("truncated device list");
    ObserveDevice(&shard.devices, hash);
  }

  auto wit_ls = next_line("witness");
  if (!wit_ls.ok()) return wit_ls.status();
  size_t num_tokens = 0;
  if (!(*wit_ls >> num_tokens)) return ParseError("bad witness count");
  for (size_t i = 0; i < num_tokens; ++i) {
    auto w_ls = next_line("w");
    if (!w_ls.ok()) return w_ls.status();
    if (!(*w_ls >> word)) return ParseError("bad witness token");
    auto token = HexUnarmor(word);
    if (!token.ok()) return token.status();
    size_t num_hashes = 0;
    if (!(*w_ls >> num_hashes)) return ParseError("bad witness hash count");
    for (size_t j = 0; j < num_hashes; ++j) {
      uint64_t hash = 0;
      if (!(*w_ls >> hash)) return ParseError("truncated witness hashes");
      shard.witness.Observe(*token, hash);
    }
  }

  auto cand_ls = next_line("candidates");
  if (!cand_ls.ok()) return cand_ls.status();
  size_t num_candidates = 0;
  if (!(*cand_ls >> num_candidates)) return ParseError("bad candidate count");
  std::vector<match::ConjunctionSignature> sigs;
  sigs.reserve(num_candidates);
  for (size_t i = 0; i < num_candidates; ++i) {
    auto c_ls = next_line("c");
    if (!c_ls.ok()) return c_ls.status();
    match::ConjunctionSignature sig;
    size_t sig_tokens = 0;
    if (!(*c_ls >> sig.cluster_size >> word >> sig_tokens)) {
      return ParseError("bad candidate line");
    }
    auto scope = HexUnarmor(word);
    if (!scope.ok()) return scope.status();
    sig.host_scope = std::move(*scope);
    for (size_t j = 0; j < sig_tokens; ++j) {
      if (!(*c_ls >> word)) return ParseError("truncated candidate tokens");
      auto token = HexUnarmor(word);
      if (!token.ok()) return token.status();
      sig.tokens.push_back(std::move(*token));
    }
    sigs.push_back(std::move(sig));
  }
  shard.candidates = Canonicalize(match::SignatureSet(std::move(sigs)));
  return shard;
}

}  // namespace leakdet::federation
