#include "federation/eval.h"

#include <sstream>

namespace leakdet::federation {

namespace {

void Tally(Scoreboard::Side* side, bool flagged, bool truth) {
  if (flagged && truth) ++side->true_positives;
  if (flagged && !truth) ++side->false_positives;
  if (!flagged && truth) ++side->false_negatives;
  if (!flagged && !truth) ++side->true_negatives;
}

void FormatSide(std::ostringstream* out, const char* name,
                const Scoreboard::Side& side) {
  *out << "  " << name << ": signatures=" << side.signatures
       << " tp=" << side.true_positives << " fp=" << side.false_positives
       << " fn=" << side.false_negatives << " tn=" << side.true_negatives
       << "\n";
}

}  // namespace

Scoreboard CompareOnReplay(const core::Detector& merged,
                           const core::Detector& central,
                           const std::vector<LabeledReplayPacket>& holdout) {
  Scoreboard board;
  board.merged.signatures = merged.signatures().size();
  board.central.signatures = central.signatures().size();
  for (const LabeledReplayPacket& item : holdout) {
    ++board.replayed;
    bool m = merged.IsSensitive(item.packet);
    bool c = central.IsSensitive(item.packet);
    if (m != c) {
      ++board.disagreements;
      if (m) ++board.merged_only;
      if (c) ++board.central_only;
    }
    Tally(&board.merged, m, item.sensitive);
    Tally(&board.central, c, item.sensitive);
  }
  return board;
}

std::string FormatScoreboard(const Scoreboard& board) {
  std::ostringstream out;
  out << "federation scoreboard: replayed=" << board.replayed
      << " disagreements=" << board.disagreements
      << (board.VerdictIdentical() ? " (verdict-identical)" : "") << "\n";
  if (board.disagreements != 0) {
    out << "  merged_only=" << board.merged_only
        << " central_only=" << board.central_only << "\n";
  }
  FormatSide(&out, "merged ", board.merged);
  FormatSide(&out, "central", board.central);
  return out.str();
}

}  // namespace leakdet::federation
