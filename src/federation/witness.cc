#include "federation/witness.h"

#include <algorithm>
#include <unordered_map>

#include "match/aho_corasick.h"

namespace leakdet::federation {

uint64_t DeviceWitnessHash(uint64_t device_key) {
  // SplitMix64 finalizer: cheap, invertible, full-avalanche. Hashing (rather
  // than shipping keys) keeps raw device identity out of the exchanged
  // exports; collisions only ever *under*-count distinct devices, which is
  // the safe direction for a privacy threshold.
  uint64_t z = device_key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void WitnessTable::Observe(const std::string& token, uint64_t device_hash) {
  std::vector<uint64_t>& set = tokens_[token];
  auto it = std::lower_bound(set.begin(), set.end(), device_hash);
  if (it != set.end() && *it == device_hash) return;
  if (set.size() >= cap_) {
    // Keep the cap smallest: a hash above the current maximum cannot enter.
    if (device_hash > set.back()) return;
    set.pop_back();
    it = std::lower_bound(set.begin(), set.end(), device_hash);
  }
  set.insert(it, device_hash);
}

size_t WitnessTable::DistinctDevices(const std::string& token) const {
  auto it = tokens_.find(token);
  return it == tokens_.end() ? 0 : it->second.size();
}

bool WitnessTable::MergeFrom(const WitnessTable& other) {
  if (other.cap_ != cap_) return false;
  for (const auto& [token, theirs] : other.tokens_) {
    std::vector<uint64_t>& ours = tokens_[token];
    if (ours.empty()) {
      ours = theirs;
      continue;
    }
    std::vector<uint64_t> merged;
    merged.reserve(ours.size() + theirs.size());
    std::set_union(ours.begin(), ours.end(), theirs.begin(), theirs.end(),
                   std::back_inserter(merged));
    if (merged.size() > cap_) merged.resize(cap_);
    ours = std::move(merged);
  }
  return true;
}

WitnessTable BuildWitnessTable(const std::vector<std::string>& tokens,
                               const std::vector<WitnessRecord>& corpus,
                               size_t cap) {
  WitnessTable table(cap);
  // Distinct patterns only; AhoCorasick maps duplicates to the first id, so
  // dedupe up front and fan the result back out to every alias below.
  std::vector<std::string> patterns;
  std::unordered_map<std::string, size_t> index;
  for (const std::string& tok : tokens) {
    if (tok.empty()) continue;
    if (index.emplace(tok, patterns.size()).second) patterns.push_back(tok);
  }
  if (patterns.empty()) return table;
  match::AhoCorasick ac(patterns);
  std::vector<bool> seen;
  for (const WitnessRecord& rec : corpus) {
    seen.assign(patterns.size(), false);
    ac.MarkPresent(rec.content, &seen);
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (seen[i]) table.Observe(patterns[i], rec.device_hash);
    }
  }
  return table;
}

}  // namespace leakdet::federation
