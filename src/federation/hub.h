#ifndef LEAKDET_FEDERATION_HUB_H_
#define LEAKDET_FEDERATION_HUB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/payload_check.h"
#include "core/signature_server.h"
#include "federation/merge.h"
#include "federation/tenant_store.h"
#include "federation/witness.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "obs/metrics.h"
#include "store/file.h"
#include "util/statusor.h"

namespace leakdet::federation {

/// Per-tenant federation policy.
struct TenantConfig {
  /// A token enters this tenant's published feed only if at least this many
  /// distinct devices witnessed it (the K-anonymity gate). 1 disables the
  /// gate; must be <= witness_cap for exact decisions.
  size_t k_anonymity = 2;
  /// Witness-evidence retention: the hub keeps the last `witness_window`
  /// (device, content) observations per tenant to re-derive witness sets at
  /// each retrain. Sized to comfortably cover one retrain_after interval.
  size_t witness_window = 4096;
  /// Witness-set truncation (see WitnessTable).
  size_t witness_cap = WitnessTable::kDefaultCap;
};

struct HubOptions {
  /// Policy for tenants without an explicit override.
  TenantConfig defaults;
  std::map<std::string, TenantConfig> tenant_overrides;
  /// Per-tenant SignatureServer shape (pools, retrain cadence, pipeline).
  core::SignatureServer::Options server;
  /// Trainer template; `tenant` and `store` are filled in per tenant.
  gateway::TrainerOptions trainer;
  /// Root directory for per-tenant store lineages ("" = no persistence).
  std::string data_root;
  /// Filesystem seam (nullptr = store::Dir::Real()).
  store::Dir* dir = nullptr;
  /// Store shape shared by every tenant lineage.
  store::StoreOptions store;
  /// Metrics destination for federation.* families (nullptr =
  /// obs::Registry::Default()).
  obs::Registry* registry = nullptr;
};

/// The crowdsourced control plane: one gateway, many signature namespaces.
///
/// Each tenant gets its own SignatureServer + TrainerLoop (one training
/// thread per tenant, preserving the server's serialization contract), its
/// own WAL/snapshot lineage under `<data_root>/tenant-<name>/`, and its own
/// compiled-epoch namespace in the gateway. Between training and
/// publication every feed passes the K-anonymity gate: the hub keeps a
/// bounded per-tenant window of (device-hash, content) observations, and a
/// SignatureServer feed transform rebuilds the witness table at each
/// retrain and generalizes out every token seen on fewer than K distinct
/// devices — device-unique identifier values never reach a published
/// signature even when they cluster.
///
/// Threading: AddTenant/Start are setup-time (single thread, before
/// traffic). Submit is thread-safe and may be called concurrently with
/// trainer publishes. TenantFeed/StatuszRender are thread-safe (feed-server
/// and admin threads).
class FederationHub {
 public:
  /// Maps a packet to its tenant (e.g. by app id). Must be deterministic
  /// and thread-safe: it runs on submit threads and on gateway workers (via
  /// the sink).
  using TenantResolver = std::function<std::string(const core::HttpPacket&)>;

  /// `gateway` and `oracle` must outlive the hub. Not owned. The hub
  /// installs itself as the gateway's sink via Sink() — wire it before
  /// gateway Start().
  FederationHub(gateway::DetectionGateway* gateway,
                const core::PayloadCheck* oracle, TenantResolver resolver,
                HubOptions options);
  ~FederationHub();
  FederationHub(const FederationHub&) = delete;
  FederationHub& operator=(const FederationHub&) = delete;

  /// Creates (and recovers, when a data root is configured) one tenant's
  /// namespace: server, K-anonymity transform, trainer, store lineage. If
  /// the lineage holds a snapshot its epoch is republished into the
  /// gateway's tenant namespace before this returns. Setup-time only.
  Status AddTenant(const std::string& tenant);

  /// Starts every tenant's training thread. Call after the last AddTenant.
  Status Start();

  /// Stops every trainer (drains mailboxes, syncs stores). Idempotent.
  void Stop();

  /// Routes one device packet: records K-anonymity witness evidence and
  /// submits to the gateway under the packet's tenant namespace. Packets
  /// resolving to an unconfigured tenant go to the default namespace (and
  /// are counted). Thread-safe.
  bool Submit(uint64_t device_key, const core::HttpPacket& packet);

  /// The gateway sink: routes each verdict to its tenant's trainer mailbox.
  gateway::DetectionGateway::PacketSink Sink();

  /// The (version, serialized feed) for `tenant`, nullopt if unknown —
  /// exactly the shape io::FeedServer::TenantFeedProvider wants. The feed
  /// is cached at publish time, so this never touches training state.
  std::optional<std::pair<uint64_t, std::string>> TenantFeed(
      const std::string& tenant) const;

  std::vector<std::string> tenants() const;

  /// /statusz section body: per-tenant feed versions, K settings, witness
  /// coverage, gate counters.
  std::string StatuszRender() const;

  /// Test/tooling access to a tenant's server (training-thread contract
  /// still applies). nullptr if unknown.
  core::SignatureServer* server(const std::string& tenant);
  gateway::TrainerLoop* trainer(const std::string& tenant);
  store::StoreManager* store(const std::string& tenant);

 private:
  struct Tenant {
    std::string name;
    TenantConfig config;
    // Declaration order is destruction-critical: the trainer deregisters
    // itself from the server, so it must die first (members are destroyed
    // in reverse order).
    std::unique_ptr<core::SignatureServer> server;
    std::unique_ptr<gateway::TrainerLoop> trainer;
    store::StoreManager* store = nullptr;  ///< owned by stores_

    /// Witness window: a ring of the last witness_window observations.
    /// Written by submit threads, copied by the trainer thread inside the
    /// feed transform.
    mutable std::mutex witness_mu;
    std::vector<WitnessRecord> ring;
    size_t ring_next = 0;
    std::vector<uint64_t> devices;  ///< min-cap distinct device hashes
    uint64_t observed = 0;

    /// Published-feed cache for TenantFeed (feed-server threads).
    mutable std::mutex feed_mu;
    uint64_t feed_version = 0;
    std::string feed_payload;

    obs::Counter* submitted = nullptr;
    obs::Counter* kanon_suppressed = nullptr;
    obs::Counter* kanon_dropped = nullptr;
    obs::Counter* published = nullptr;
  };

  /// The K-anonymity gate + feed cache, installed as `tenant`'s server
  /// feed transform (trainer thread).
  match::SignatureSet GateFeed(Tenant* tenant, uint64_t version,
                               match::SignatureSet trained);
  void CacheFeed(Tenant* tenant);
  Tenant* Find(const std::string& tenant) const;

  gateway::DetectionGateway* gateway_;
  const core::PayloadCheck* oracle_;
  TenantResolver resolver_;
  HubOptions options_;
  obs::Registry* registry_;
  std::unique_ptr<TenantStoreSet> stores_;  ///< null without a data root
  /// Mutated only by AddTenant (setup-time); read-only once traffic flows.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  obs::Counter* unknown_tenant_ = nullptr;
  bool started_ = false;
};

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_HUB_H_
