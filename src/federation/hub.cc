#include "federation/hub.h"

#include <sstream>
#include <unordered_set>

#include "core/packet.h"

namespace leakdet::federation {

FederationHub::FederationHub(gateway::DetectionGateway* gateway,
                             const core::PayloadCheck* oracle,
                             TenantResolver resolver, HubOptions options)
    : gateway_(gateway),
      oracle_(oracle),
      resolver_(std::move(resolver)),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : obs::Registry::Default()) {
  if (!options_.data_root.empty()) {
    store::Dir* dir =
        options_.dir != nullptr ? options_.dir : store::Dir::Real();
    stores_ = std::make_unique<TenantStoreSet>(dir, options_.data_root,
                                               options_.store);
  }
  unknown_tenant_ = registry_->GetCounter("federation.unknown_tenant");
}

FederationHub::~FederationHub() { Stop(); }

Status FederationHub::AddTenant(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (started_) {
    return Status::FailedPrecondition("AddTenant after Start");
  }
  if (tenants_.count(tenant) != 0) {
    return Status::FailedPrecondition("tenant already exists: " + tenant);
  }
  auto state = std::make_unique<Tenant>();
  Tenant* t = state.get();
  t->name = tenant;
  auto override_it = options_.tenant_overrides.find(tenant);
  t->config = override_it != options_.tenant_overrides.end()
                  ? override_it->second
                  : options_.defaults;
  if (t->config.witness_window == 0) t->config.witness_window = 1;

  obs::Labels labels{{"tenant", tenant}};
  t->submitted = registry_->GetCounter("federation.submitted", labels);
  t->kanon_suppressed =
      registry_->GetCounter("federation.kanon_suppressed", labels);
  t->kanon_dropped = registry_->GetCounter("federation.kanon_dropped", labels);
  t->published = registry_->GetCounter("federation.published", labels);

  t->server =
      std::make_unique<core::SignatureServer>(oracle_, options_.server);
  // The K-anonymity gate sits between training and everything downstream
  // (stored feed, snapshot, observer): what it returns IS the feed.
  t->server->SetFeedTransform(
      [this, t](uint64_t version, match::SignatureSet trained) {
        return GateFeed(t, version, std::move(trained));
      });

  gateway::TrainerOptions trainer_options = options_.trainer;
  trainer_options.tenant = tenant;
  trainer_options.store = nullptr;
  if (stores_) {
    auto store = stores_->Open(tenant);
    if (!store.ok()) return store.status();
    t->store = *store;
    trainer_options.store = t->store;
  }
  // Installs the feed observer: from here on every version advance compiles
  // and publishes into the gateway's tenant namespace.
  t->trainer = std::make_unique<gateway::TrainerLoop>(
      t->server.get(), gateway_, trainer_options);

  if (t->store != nullptr) {
    // Serve-before-replay recovery. The transform is deliberately NOT
    // applied to the restored feed (snapshots capture post-gate feeds; the
    // witness window is empty after a restart and would suppress
    // everything), but replayed retrains do pass the gate again.
    auto recovered = t->store->Recover(t->server.get());
    if (!recovered.ok()) return recovered.status();
  }
  CacheFeed(t);

  tenants_.emplace(tenant, std::move(state));
  return Status::OK();
}

Status FederationHub::Start() {
  if (started_) return Status::FailedPrecondition("hub already started");
  started_ = true;
  for (auto& [name, t] : tenants_) {
    Status status = t->trainer->Start();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void FederationHub::Stop() {
  for (auto& [name, t] : tenants_) t->trainer->Stop();
}

bool FederationHub::Submit(uint64_t device_key,
                           const core::HttpPacket& packet) {
  std::string tenant = resolver_(packet);
  Tenant* t = Find(tenant);
  if (t == nullptr) {
    unknown_tenant_->Inc();
    return gateway_->Submit(device_key, packet);
  }
  t->submitted->Inc();
  uint64_t hash = DeviceWitnessHash(device_key);
  {
    std::lock_guard<std::mutex> lock(t->witness_mu);
    ++t->observed;
    ObserveDevice(&t->devices, hash);
    WitnessRecord record{hash, core::PacketContent(packet)};
    if (t->ring.size() < t->config.witness_window) {
      t->ring.push_back(std::move(record));
    } else {
      t->ring[t->ring_next] = std::move(record);
      t->ring_next = (t->ring_next + 1) % t->config.witness_window;
    }
  }
  return gateway_->Submit(device_key, tenant, packet);
}

gateway::DetectionGateway::PacketSink FederationHub::Sink() {
  return [this](const core::HttpPacket& packet,
                const gateway::Verdict& verdict) {
    Tenant* t = Find(resolver_(packet));
    if (t != nullptr) t->trainer->Offer(packet, verdict);
  };
}

match::SignatureSet FederationHub::GateFeed(Tenant* t, uint64_t version,
                                            match::SignatureSet trained) {
  // Snapshot the witness window (submit threads keep writing meanwhile).
  std::vector<WitnessRecord> corpus;
  {
    std::lock_guard<std::mutex> lock(t->witness_mu);
    corpus = t->ring;
  }
  ShardExport local;
  local.tenant = t->name;
  local.witness_cap = t->config.witness_cap;
  local.candidates = Canonicalize(trained);
  std::unordered_set<std::string> seen;
  std::vector<std::string> tokens;
  for (const match::ConjunctionSignature& sig :
       local.candidates.signatures()) {
    for (const std::string& token : sig.tokens) {
      if (seen.insert(token).second) tokens.push_back(token);
    }
  }
  local.witness = BuildWitnessTable(tokens, corpus, t->config.witness_cap);

  PublishStats stats;
  match::SignatureSet gated =
      PublishFederated(local, t->config.k_anonymity, &stats);
  t->kanon_suppressed->Inc(stats.tokens_suppressed);
  t->kanon_dropped->Inc(stats.signatures_dropped);
  t->published->Inc();
  {
    std::lock_guard<std::mutex> lock(t->feed_mu);
    t->feed_version = version;
    t->feed_payload = gated.Serialize();
  }
  return gated;
}

void FederationHub::CacheFeed(Tenant* t) {
  // Setup-time only (single-threaded): prime the cache from the server's
  // current (possibly recovered) state so TenantFeed serves it immediately.
  std::lock_guard<std::mutex> lock(t->feed_mu);
  t->feed_version = t->server->feed_version();
  t->feed_payload = t->server->Feed();
}

FederationHub::Tenant* FederationHub::Find(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::optional<std::pair<uint64_t, std::string>> FederationHub::TenantFeed(
    const std::string& tenant) const {
  Tenant* t = Find(tenant);
  if (t == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(t->feed_mu);
  return std::make_pair(t->feed_version, t->feed_payload);
}

std::vector<std::string> FederationHub::tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, _] : tenants_) names.push_back(name);
  return names;
}

std::string FederationHub::StatuszRender() const {
  std::ostringstream out;
  out << "tenants: " << tenants_.size() << "\n";
  for (const auto& [name, t] : tenants_) {
    uint64_t version;
    {
      std::lock_guard<std::mutex> lock(t->feed_mu);
      version = t->feed_version;
    }
    size_t devices;
    uint64_t observed;
    size_t window;
    {
      std::lock_guard<std::mutex> lock(t->witness_mu);
      devices = t->devices.size();
      observed = t->observed;
      window = t->ring.size();
    }
    out << "  " << name << ": feed_version=" << version
        << " k=" << t->config.k_anonymity << " devices_seen=" << devices
        << (devices >= ShardExport::kDeviceSetCap ? "+" : "")
        << " observed=" << observed << " witness_window=" << window << "/"
        << t->config.witness_window
        << " gateway_epoch=" << gateway_->tenant_version(name) << "\n";
  }
  return out.str();
}

core::SignatureServer* FederationHub::server(const std::string& tenant) {
  Tenant* t = Find(tenant);
  return t == nullptr ? nullptr : t->server.get();
}

gateway::TrainerLoop* FederationHub::trainer(const std::string& tenant) {
  Tenant* t = Find(tenant);
  return t == nullptr ? nullptr : t->trainer.get();
}

store::StoreManager* FederationHub::store(const std::string& tenant) {
  Tenant* t = Find(tenant);
  return t == nullptr ? nullptr : t->store;
}

}  // namespace leakdet::federation
