#ifndef LEAKDET_FEDERATION_TENANT_STORE_H_
#define LEAKDET_FEDERATION_TENANT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/store_manager.h"
#include "util/statusor.h"

namespace leakdet::federation {

/// Directory name for one tenant's store lineage under a federation data
/// root: "tenant-" + a filesystem-safe mangling of the tenant name
/// (alphanumerics, '-', '_', '.' pass through; every other byte becomes
/// "%XX"). Injective, so two tenants never collide on disk.
std::string TenantDirName(const std::string& tenant);

/// Inverse of TenantDirName. Error if `dir_name` is not a tenant directory
/// name or the escape sequences are malformed.
StatusOr<std::string> TenantFromDirName(const std::string& dir_name);

/// Tenant directories present under `root` ("tenant-*" entries), decoded
/// and sorted. Tolerates a missing root (empty result).
std::vector<std::string> ListTenants(store::Dir* dir, const std::string& root);

/// One WAL/snapshot lineage per tenant, all under a shared data root:
///
///   <root>/tenant-<name>/wal-*.log, snap-*.snap
///
/// Lineages are opened lazily on first use so a hub configured for many
/// tenants only pays for the active ones. Same threading contract as
/// StoreManager (one training thread per tenant; the hub runs one trainer
/// thread per tenant, so lineages never share a writer).
class TenantStoreSet {
 public:
  TenantStoreSet(store::Dir* dir, std::string root,
                 store::StoreOptions options);

  /// The lineage for `tenant`, opening (and creating its directory) on
  /// first call.
  StatusOr<store::StoreManager*> Open(const std::string& tenant);

  /// Tenants with an open lineage (not necessarily all on disk).
  std::vector<std::string> open_tenants() const;

  const std::string& root() const { return root_; }

 private:
  store::Dir* dir_;
  std::string root_;
  store::StoreOptions options_;
  bool root_created_ = false;
  std::map<std::string, std::unique_ptr<store::StoreManager>> stores_;
};

}  // namespace leakdet::federation

#endif  // LEAKDET_FEDERATION_TENANT_STORE_H_
