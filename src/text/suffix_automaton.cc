#include "text/suffix_automaton.h"

#include <algorithm>

namespace leakdet::text {

SuffixAutomaton::SuffixAutomaton(std::string_view s) : source_(s) {
  states_.reserve(2 * s.size() + 2);
  states_.emplace_back();  // root
  last_ = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    Extend(static_cast<uint8_t>(s[i]), static_cast<int32_t>(i + 1));
  }
  // Counting sort by len for ordered passes.
  by_len_.resize(states_.size());
  std::vector<int32_t> cnt(s.size() + 2, 0);
  for (const State& st : states_) cnt[st.len]++;
  for (size_t i = 1; i < cnt.size(); ++i) cnt[i] += cnt[i - 1];
  for (int32_t v = static_cast<int32_t>(states_.size()) - 1; v >= 0; --v) {
    by_len_[--cnt[states_[v].len]] = v;
  }
}

void SuffixAutomaton::Extend(uint8_t c, int32_t pos) {
  int32_t cur = static_cast<int32_t>(states_.size());
  states_.emplace_back();
  states_[cur].len = states_[last_].len + 1;
  states_[cur].first_end = pos;
  int32_t p = last_;
  while (p != -1 && !states_[p].next.count(c)) {
    states_[p].next[c] = cur;
    p = states_[p].link;
  }
  if (p == -1) {
    states_[cur].link = 0;
  } else {
    int32_t q = states_[p].next[c];
    if (states_[p].len + 1 == states_[q].len) {
      states_[cur].link = q;
    } else {
      int32_t clone = static_cast<int32_t>(states_.size());
      states_.push_back(states_[q]);  // copies next, link, first_end
      states_[clone].len = states_[p].len + 1;
      while (p != -1 && states_[p].next.count(c) &&
             states_[p].next[c] == q) {
        states_[p].next[c] = clone;
        p = states_[p].link;
      }
      states_[q].link = clone;
      states_[cur].link = clone;
    }
  }
  last_ = cur;
}

bool SuffixAutomaton::ContainsSubstring(std::string_view t) const {
  int32_t cur = 0;
  for (char ch : t) {
    auto it = states_[cur].next.find(static_cast<uint8_t>(ch));
    if (it == states_[cur].next.end()) return false;
    cur = it->second;
  }
  return true;
}

SuffixAutomaton::LcsResult SuffixAutomaton::LongestCommonSubstring(
    std::string_view other) const {
  LcsResult best;
  int32_t cur = 0;
  size_t l = 0;
  for (size_t i = 0; i < other.size(); ++i) {
    uint8_t c = static_cast<uint8_t>(other[i]);
    while (cur != 0 && !states_[cur].next.count(c)) {
      cur = states_[cur].link;
      l = static_cast<size_t>(states_[cur].len);
    }
    auto it = states_[cur].next.find(c);
    if (it != states_[cur].next.end()) {
      cur = it->second;
      ++l;
    } else {
      cur = 0;
      l = 0;
    }
    if (l > best.length) {
      best.length = l;
      best.end_in_other = i + 1;
    }
  }
  return best;
}

}  // namespace leakdet::text
