#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace leakdet::text {

size_t EditDistance(std::string_view a, std::string_view b) {
  // Keep the shorter string as the DP row.
  if (a.size() < b.size()) std::swap(a, b);
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // row[i-1][0]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({sub, above + 1, row[j - 1] + 1});
      diag = above;
    }
  }
  return row[b.size()];
}

size_t EditDistanceCapped(std::string_view a, std::string_view b, size_t cap) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() >= cap) return cap;
  if (b.empty()) return std::min(a.size(), cap);

  const size_t kInf = cap + 1;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), cap); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    // Band: only |i - j| < cap cells can be < cap.
    size_t lo = (i > cap) ? i - cap : 1;
    size_t hi = std::min(b.size(), i + cap);
    size_t diag = (lo >= 2) ? row[lo - 1] : row[0];
    if (lo == 1) {
      diag = row[0];
      row[0] = std::min(i, kInf);
    } else {
      row[lo - 1] = kInf;  // outside the band
    }
    size_t row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t left = (j >= 1) ? row[j - 1] : kInf;
      size_t v = std::min({sub, above + 1, left + 1});
      row[j] = std::min(v, kInf);
      row_min = std::min(row_min, row[j]);
      diag = above;
    }
    if (hi < b.size()) row[hi + 1] = kInf;
    if (row_min >= cap) return cap;  // the whole band exceeded the cap
  }
  return std::min(row[b.size()], cap);
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) /
         static_cast<double>(longest);
}

}  // namespace leakdet::text
