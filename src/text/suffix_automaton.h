#ifndef LEAKDET_TEXT_SUFFIX_AUTOMATON_H_
#define LEAKDET_TEXT_SUFFIX_AUTOMATON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace leakdet::text {

/// Suffix automaton (DAWG) over a single byte string. Recognizes exactly the
/// substrings of the build string; supports linear-time longest-common-
/// substring queries against other strings, which the signature generator
/// uses to extract invariant tokens from packet clusters (§IV-E).
class SuffixAutomaton {
 public:
  /// Builds the automaton for `s` in O(|s| log σ).
  explicit SuffixAutomaton(std::string_view s);

  /// True iff `t` is a substring of the build string.
  bool ContainsSubstring(std::string_view t) const;

  /// Length and end-position (in `other`) of the longest common substring of
  /// the build string and `other`.
  struct LcsResult {
    size_t length = 0;
    size_t end_in_other = 0;  ///< exclusive end index within `other`
  };
  LcsResult LongestCommonSubstring(std::string_view other) const;

  /// Number of automaton states (root included).
  size_t num_states() const { return states_.size(); }

  /// The string the automaton was built over.
  const std::string& source() const { return source_; }

  // --- Low-level state access for multi-string algorithms -----------------

  struct State {
    int32_t link = -1;      ///< suffix link
    int32_t len = 0;        ///< length of longest string in this state's class
    int32_t first_end = 0;  ///< exclusive end index of first occurrence
    std::map<uint8_t, int32_t> next;
  };
  const State& state(size_t i) const { return states_[i]; }

  /// State indices sorted by increasing `len` (root first). Useful for
  /// bottom-up / top-down passes over the suffix-link tree.
  const std::vector<int32_t>& StatesByLen() const { return by_len_; }

 private:
  void Extend(uint8_t c, int32_t pos);

  std::string source_;
  std::vector<State> states_;
  int32_t last_;
  std::vector<int32_t> by_len_;
};

}  // namespace leakdet::text

#endif  // LEAKDET_TEXT_SUFFIX_AUTOMATON_H_
