#include "text/token_extract.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "text/suffix_automaton.h"

namespace leakdet::text {

namespace {

/// Matching pass of the classic multi-string LCS algorithm: for every state
/// of `sam`, the longest match ending in that state that also occurs in `t`.
/// Results are propagated up the suffix-link tree so that every state's value
/// is valid for its own (shorter) strings too.
std::vector<int32_t> MatchLengths(const SuffixAutomaton& sam,
                                  std::string_view t) {
  std::vector<int32_t> ms(sam.num_states(), 0);
  int32_t cur = 0;
  int32_t l = 0;
  for (char ch : t) {
    uint8_t c = static_cast<uint8_t>(ch);
    while (cur != 0 && !sam.state(cur).next.count(c)) {
      cur = sam.state(cur).link;
      l = sam.state(cur).len;
    }
    auto it = sam.state(cur).next.find(c);
    if (it != sam.state(cur).next.end()) {
      cur = it->second;
      ++l;
    } else {
      cur = 0;
      l = 0;
    }
    ms[cur] = std::max(ms[cur], l);
  }
  // Propagate to suffix-link ancestors, longest states first.
  const auto& order = sam.StatesByLen();
  for (size_t i = order.size(); i-- > 0;) {
    int32_t v = order[i];
    int32_t p = sam.state(v).link;
    if (p >= 0) {
      ms[p] = std::max(ms[p], std::min(ms[v], sam.state(p).len));
    }
  }
  return ms;
}

struct Candidate {
  size_t begin;  // interval within the base string
  size_t end;
};

}  // namespace

std::vector<std::string> ExtractInvariantTokens(
    const std::vector<std::string_view>& samples,
    const TokenExtractOptions& options) {
  if (samples.empty()) return {};
  // Base the automaton on the shortest sample: every common substring is a
  // substring of it.
  size_t base_idx = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].size() < samples[base_idx].size()) base_idx = i;
  }
  std::string_view base = samples[base_idx];
  if (base.empty()) return {};

  SuffixAutomaton sam(base);
  // For each state: longest length common to ALL samples.
  std::vector<int32_t> common(sam.num_states());
  for (size_t v = 0; v < sam.num_states(); ++v) {
    common[v] = sam.state(v).len;
  }
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i == base_idx) continue;
    std::vector<int32_t> ms = MatchLengths(sam, samples[i]);
    for (size_t v = 0; v < sam.num_states(); ++v) {
      common[v] = std::min(common[v], ms[v]);
    }
  }

  // Candidate intervals in `base`: for each state, the suffix of its longest
  // string that is common to all samples, anchored at the first occurrence.
  std::vector<Candidate> cands;
  for (size_t v = 1; v < sam.num_states(); ++v) {
    int32_t len = common[v];
    if (len < static_cast<int32_t>(options.min_token_len)) continue;
    size_t end = static_cast<size_t>(sam.state(v).first_end);
    cands.push_back(Candidate{end - static_cast<size_t>(len), end});
  }
  if (cands.empty()) return {};

  // Prune interval-contained candidates: sort by begin asc, end desc; keep
  // intervals not contained in a previously kept one.
  std::sort(cands.begin(), cands.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.end > b.end;
  });
  std::vector<Candidate> kept;
  size_t max_end = 0;
  for (const Candidate& c : cands) {
    if (!kept.empty() && c.end <= max_end) continue;  // contained
    kept.push_back(c);
    max_end = std::max(max_end, c.end);
  }

  // Deduplicate identical contents, then drop any token that is a substring
  // of another survivor (content containment can differ from interval
  // containment when the same bytes recur in `base`).
  std::vector<std::string> tokens;
  {
    std::unordered_set<std::string> seen;
    for (const Candidate& c : kept) {
      std::string tok(base.substr(c.begin, c.end - c.begin));
      if (seen.insert(tok).second) tokens.push_back(std::move(tok));
    }
  }
  std::sort(tokens.begin(), tokens.end(),
            [](const std::string& a, const std::string& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  std::vector<std::string> maximal;
  for (const std::string& tok : tokens) {
    bool contained = false;
    for (const std::string& big : maximal) {
      if (big.find(tok) != std::string::npos) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(tok);
    if (options.max_tokens != 0 && maximal.size() >= options.max_tokens) break;
  }
  return maximal;
}

std::vector<std::string> ExtractInvariantTokens(
    const std::vector<std::string>& samples,
    const TokenExtractOptions& options) {
  std::vector<std::string_view> views(samples.begin(), samples.end());
  return ExtractInvariantTokens(views, options);
}

std::string LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return std::string();
  SuffixAutomaton sam(a);
  auto r = sam.LongestCommonSubstring(b);
  return std::string(b.substr(r.end_in_other - r.length, r.length));
}

}  // namespace leakdet::text
