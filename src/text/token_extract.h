#ifndef LEAKDET_TEXT_TOKEN_EXTRACT_H_
#define LEAKDET_TEXT_TOKEN_EXTRACT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace leakdet::text {

/// Options for invariant-token extraction.
struct TokenExtractOptions {
  /// Tokens shorter than this are discarded. The paper warns (§VI) that
  /// careless extraction yields degenerate signatures ("GET *", "HTTP/1.1");
  /// a minimum length is the first line of defense.
  size_t min_token_len = 4;

  /// Upper bound on the number of maximal tokens returned (longest first).
  /// 0 means unlimited.
  size_t max_tokens = 64;
};

/// Extracts the maximal substrings of length >= `min_token_len` that occur in
/// *every* string of `samples` — the invariant tokens of a packet cluster,
/// in the sense of Polygraph-style conjunction signatures (paper §IV-E:
/// "the longest common substrings in the dendrogram").
///
/// Returned tokens are distinct, none is a substring of another, and they are
/// ordered longest-first. For a single-element cluster the result is the
/// sample itself (if long enough). Empty input or an empty sample yields no
/// tokens.
///
/// Complexity: O(total input length) automaton work over the shortest sample
/// plus near-linear pruning.
std::vector<std::string> ExtractInvariantTokens(
    const std::vector<std::string_view>& samples,
    const TokenExtractOptions& options = {});

/// Convenience overload for owned strings.
std::vector<std::string> ExtractInvariantTokens(
    const std::vector<std::string>& samples,
    const TokenExtractOptions& options = {});

/// Longest common substring of exactly two strings (helper built on the
/// suffix automaton; exposed for tests and analysis tools).
std::string LongestCommonSubstring(std::string_view a, std::string_view b);

}  // namespace leakdet::text

#endif  // LEAKDET_TEXT_TOKEN_EXTRACT_H_
