#ifndef LEAKDET_TEXT_EDIT_DISTANCE_H_
#define LEAKDET_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace leakdet::text {

/// Levenshtein edit distance (unit-cost insert/delete/substitute) between
/// `a` and `b`. O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with an upper bound: returns min(d(a,b), cap).
/// Uses a banded DP, O(cap * min(|a|,|b|)) time, which is much faster when
/// the caller only cares whether two strings are within `cap` edits.
size_t EditDistanceCapped(std::string_view a, std::string_view b, size_t cap);

/// The paper's HTTP-host distance (§IV-B):
///   d_host = ed(a, b) / max(len(a), len(b))  ∈ [0, 1].
/// Returns 0 when both strings are empty.
double NormalizedEditDistance(std::string_view a, std::string_view b);

}  // namespace leakdet::text

#endif  // LEAKDET_TEXT_EDIT_DISTANCE_H_
