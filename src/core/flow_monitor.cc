#include "core/flow_monitor.h"

#include "net/host.h"

namespace leakdet::core {

FlowVerdict FlowMonitor::Mediate(const HttpPacket& packet) {
  if (!detector_->IsSensitive(packet)) {
    stats_.silent++;
    return FlowVerdict::kPassedSilently;
  }
  std::string domain = net::RegistrableDomain(packet.destination.host);
  auto key = std::make_pair(packet.app_id, domain);
  auto it = decisions_.find(key);
  if (it == decisions_.end()) {
    stats_.prompts++;
    bool allow = prompt_ ? prompt_(packet.app_id, domain) : false;
    it = decisions_.emplace(key, allow).first;
  }
  if (it->second) {
    stats_.allowed++;
    return FlowVerdict::kAllowedByPolicy;
  }
  stats_.blocked++;
  return FlowVerdict::kBlockedByPolicy;
}

}  // namespace leakdet::core
