#include "core/siggen.h"

#include <algorithm>

#include "net/host.h"
#include "text/token_extract.h"

namespace leakdet::core {

namespace {

/// Fraction of corpus entries containing `token`.
double DocumentFrequency(const std::string& token,
                         const std::vector<std::string>& corpus) {
  if (corpus.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& doc : corpus) {
    if (doc.find(token) != std::string::npos) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(corpus.size());
}

/// Fraction of corpus entries containing *all* tokens.
double ConjunctionFrequency(const std::vector<std::string>& tokens,
                            const std::vector<std::string>& corpus) {
  if (corpus.empty() || tokens.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& doc : corpus) {
    bool all = true;
    for (const std::string& t : tokens) {
      if (doc.find(t) == std::string::npos) {
        all = false;
        break;
      }
    }
    if (all) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(corpus.size());
}

}  // namespace

match::SignatureSet SignatureGenerator::Generate(
    const std::vector<HttpPacket>& packets,
    const std::vector<std::vector<int32_t>>& clusters,
    const std::vector<std::string>& normal_corpus,
    std::vector<SiggenClusterReport>* reports) const {
  std::vector<match::ConjunctionSignature> signatures;

  for (size_t c = 0; c < clusters.size(); ++c) {
    SiggenClusterReport report;
    report.cluster_index = c;
    report.cluster_size = clusters[c].size();

    if (clusters[c].size() < options_.min_cluster_size) {
      report.reject_reason = "cluster below min_cluster_size";
      if (reports) reports->push_back(report);
      continue;
    }

    // Invariant tokens of the cluster's packet contents (§IV-E step 2).
    std::vector<std::string> contents;
    contents.reserve(clusters[c].size());
    for (int32_t idx : clusters[c]) {
      contents.push_back(PacketContent(packets[static_cast<size_t>(idx)]));
    }
    text::TokenExtractOptions tex;
    tex.min_token_len = options_.min_token_len;
    tex.max_tokens = options_.max_tokens_per_signature * 4;  // pre-screen pool
    std::vector<std::string> tokens = text::ExtractInvariantTokens(contents,
                                                                   tex);
    report.raw_tokens = tokens.size();

    // Generic-token screen against the normal corpus.
    std::vector<std::string> kept;
    for (std::string& tok : tokens) {
      if (DocumentFrequency(tok, normal_corpus) <=
          options_.max_token_normal_df) {
        kept.push_back(std::move(tok));
      }
      if (kept.size() >= options_.max_tokens_per_signature) break;
    }
    report.kept_tokens = kept.size();
    if (kept.empty()) {
      report.reject_reason = "no tokens survived screening";
      if (reports) reports->push_back(report);
      continue;
    }

    // Whole-signature false-positive screen.
    double fp = ConjunctionFrequency(kept, normal_corpus);
    if (fp > options_.max_signature_normal_fp) {
      report.reject_reason = "signature matches normal corpus";
      if (reports) reports->push_back(report);
      continue;
    }

    match::ConjunctionSignature sig;
    sig.id = "sig-" + std::to_string(signatures.size());
    sig.tokens = std::move(kept);
    sig.cluster_size = static_cast<uint32_t>(clusters[c].size());
    if (options_.scope_by_host) {
      // Scope to the cluster's registrable domain when unanimous.
      std::string domain = net::RegistrableDomain(
          packets[static_cast<size_t>(clusters[c][0])].destination.host);
      bool unanimous = true;
      for (int32_t idx : clusters[c]) {
        if (net::RegistrableDomain(
                packets[static_cast<size_t>(idx)].destination.host) !=
            domain) {
          unanimous = false;
          break;
        }
      }
      if (unanimous) sig.host_scope = domain;
    }
    signatures.push_back(std::move(sig));
    report.emitted = true;
    if (reports) reports->push_back(report);
  }
  return match::SignatureSet(std::move(signatures));
}

}  // namespace leakdet::core
