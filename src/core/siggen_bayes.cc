#include "core/siggen_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "text/token_extract.h"

namespace leakdet::core {

namespace {

double DocumentFrequency(const std::string& token,
                         const std::vector<std::string>& docs) {
  if (docs.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& d : docs) {
    if (d.find(token) != std::string::npos) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(docs.size());
}

}  // namespace

match::BayesSignatureSet BayesSignatureGenerator::Generate(
    const std::vector<HttpPacket>& packets,
    const std::vector<std::vector<int32_t>>& clusters,
    const std::vector<std::string>& normal_corpus) const {
  std::vector<match::BayesSignature> signatures;

  for (const std::vector<int32_t>& cluster : clusters) {
    if (cluster.size() < options_.min_cluster_size) continue;

    std::vector<std::string> contents;
    contents.reserve(cluster.size());
    for (int32_t idx : cluster) {
      contents.push_back(PacketContent(packets[static_cast<size_t>(idx)]));
    }

    // Candidate mining: invariant tokens of the whole cluster plus of small
    // sub-samples, so tokens carried by only a majority of members (the
    // polymorphic case) still enter the pool.
    text::TokenExtractOptions tex;
    tex.min_token_len = options_.min_token_len;
    tex.max_tokens = options_.max_tokens_per_signature * 4;
    std::set<std::string> candidates;
    for (const std::string& tok : text::ExtractInvariantTokens(contents, tex)) {
      candidates.insert(tok);
    }
    for (size_t i = 0; i + 1 < contents.size() && i < 16; i += 2) {
      std::vector<std::string_view> pair = {contents[i], contents[i + 1]};
      for (const std::string& tok : text::ExtractInvariantTokens(pair, tex)) {
        candidates.insert(tok);
      }
    }

    // Weigh candidates by their leaking-vs-normal log-odds.
    match::BayesSignature sig;
    sig.id = "bsig-" + std::to_string(signatures.size());
    sig.cluster_size = static_cast<uint32_t>(cluster.size());
    std::vector<match::WeightedToken> weighted;
    for (const std::string& tok : candidates) {
      double df_pos = DocumentFrequency(tok, contents);
      if (df_pos < options_.min_positive_df) continue;
      double df_neg = DocumentFrequency(tok, normal_corpus);
      double w = std::log((df_pos + options_.epsilon) /
                          (df_neg + options_.epsilon));
      if (w <= 0) continue;
      weighted.push_back(match::WeightedToken{tok, w});
    }
    if (weighted.empty()) continue;
    // Keep the highest-weight tokens.
    std::sort(weighted.begin(), weighted.end(),
              [](const match::WeightedToken& a, const match::WeightedToken& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.token < b.token;
              });
    if (weighted.size() > options_.max_tokens_per_signature) {
      weighted.resize(options_.max_tokens_per_signature);
    }
    sig.tokens = std::move(weighted);

    // Threshold: a fraction of the weakest training member's score...
    double min_member_score = std::numeric_limits<double>::infinity();
    for (const std::string& content : contents) {
      min_member_score = std::min(min_member_score, sig.Score(content));
    }
    sig.threshold = options_.threshold_fraction * min_member_score;

    // ...raised until the normal corpus false-positive bound holds.
    if (!normal_corpus.empty()) {
      std::vector<double> corpus_scores;
      corpus_scores.reserve(normal_corpus.size());
      for (const std::string& doc : normal_corpus) {
        corpus_scores.push_back(sig.Score(doc));
      }
      std::sort(corpus_scores.begin(), corpus_scores.end());
      size_t allowed = static_cast<size_t>(options_.max_normal_fp *
                                           static_cast<double>(
                                               corpus_scores.size()));
      // Threshold just above the score at the allowed-FP quantile.
      double quantile =
          corpus_scores[corpus_scores.size() - 1 - allowed];
      if (quantile >= sig.threshold) {
        sig.threshold = std::nextafter(quantile,
                                       std::numeric_limits<double>::max()) +
                        1e-9;
      }
    }
    signatures.push_back(std::move(sig));
  }
  return match::BayesSignatureSet(std::move(signatures));
}

}  // namespace leakdet::core
