#ifndef LEAKDET_CORE_SIGGEN_H_
#define LEAKDET_CORE_SIGGEN_H_

#include <string>
#include <vector>

#include "core/hcluster.h"
#include "core/packet.h"
#include "match/signature.h"
#include "util/statusor.h"

namespace leakdet::core {

/// Options for conjunction-signature generation (§IV-E).
struct SiggenOptions {
  /// Minimum invariant-token length. Short tokens ("id=", "&v=") occur in
  /// benign traffic and produce the degenerate signatures §VI warns about.
  size_t min_token_len = 6;

  /// Clusters with fewer members than this produce no signature. 1 keeps the
  /// paper's "repeat for all clusters"; higher values trade recall for
  /// robustness.
  size_t min_cluster_size = 1;

  /// Cap on tokens kept per signature (longest first).
  size_t max_tokens_per_signature = 16;

  /// Tokens occurring in more than this fraction of the normal-traffic
  /// corpus are dropped as generic (Polygraph-style token screening). The
  /// paper's countermeasure against "signatures that match most network
  /// packets".
  double max_token_normal_df = 0.05;

  /// Whole signatures still matching more than this fraction of the normal
  /// corpus after token screening are discarded.
  double max_signature_normal_fp = 0.01;

  /// Scope each signature to its cluster's registrable domain when every
  /// cluster member shares one (preserves the destination-specificity the
  /// clustering established). Off by default: the paper matches signatures
  /// by content only, which is what lets one module's signature catch the
  /// same SDK template on other hosts (§IV's polymorphism argument). The
  /// scoping ablation quantifies the trade-off.
  bool scope_by_host = false;
};

/// Summary of one generated (or rejected) cluster signature, for reports.
struct SiggenClusterReport {
  size_t cluster_index = 0;
  size_t cluster_size = 0;
  size_t raw_tokens = 0;       ///< invariant tokens before screening
  size_t kept_tokens = 0;      ///< tokens surviving the normal-corpus screen
  bool emitted = false;
  std::string reject_reason;   ///< "" when emitted
};

/// Generates one conjunction signature per cluster from the invariant tokens
/// of the cluster's packet contents, screened against a sample of normal
/// traffic.
class SignatureGenerator {
 public:
  explicit SignatureGenerator(SiggenOptions options = {})
      : options_(options) {}

  /// `clusters` holds indices into `packets` (as produced by
  /// Dendrogram::CutAtHeight). `normal_corpus` is a sample of non-sensitive
  /// packet contents used for generic-token and false-positive screening
  /// (may be empty, disabling the screens).
  match::SignatureSet Generate(
      const std::vector<HttpPacket>& packets,
      const std::vector<std::vector<int32_t>>& clusters,
      const std::vector<std::string>& normal_corpus,
      std::vector<SiggenClusterReport>* reports = nullptr) const;

  const SiggenOptions& options() const { return options_; }

 private:
  SiggenOptions options_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_SIGGEN_H_
