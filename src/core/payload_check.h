#ifndef LEAKDET_CORE_PAYLOAD_CHECK_H_
#define LEAKDET_CORE_PAYLOAD_CHECK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/packet.h"
#include "match/aho_corasick.h"

namespace leakdet::core {

/// The nine categories of sensitive information the paper tracks (Table III):
/// raw UDIDs, their MD5/SHA1 hex digests, and the carrier name.
enum class SensitiveType : int {
  kAndroidId = 0,
  kAndroidIdMd5,
  kAndroidIdSha1,
  kCarrier,
  kImei,
  kImeiMd5,
  kImeiSha1,
  kImsi,
  kSimSerial,
};

inline constexpr int kNumSensitiveTypes = 9;

/// Stable display name matching Table III row labels
/// ("ANDROID_ID", "IMEI MD5", ...).
std::string_view SensitiveTypeName(SensitiveType type);

/// The identifying values of one device, as known to the experimenter. The
/// paper ran all 1,188 apps on a single instrumented handset whose
/// identifiers were known, which is what makes ground-truth labelling
/// possible (§V-A).
struct DeviceTokens {
  std::string android_id;  ///< 16 lowercase-hex chars
  std::string imei;        ///< 15 digits
  std::string imsi;        ///< 15 digits
  std::string sim_serial;  ///< 19-20 digits (ICCID)
  std::string carrier;     ///< e.g. "NTT DOCOMO"
};

/// The payload check of §IV-A: splits traffic into the suspicious group
/// (packets containing sensitive information) and the normal group. Detects
/// each raw identifier, its MD5/SHA1 hex digests (both hex cases), and the
/// carrier name (raw and percent-encoded) anywhere in the packet content via
/// one Aho–Corasick scan.
class PayloadCheck {
 public:
  /// `devices` are all handsets whose traffic may appear in the trace.
  /// `known_xor_keys` optionally lists reverse-engineered SDK obfuscation
  /// keys (§VI): for each key, the XOR-hex ciphertexts of the device UDIDs
  /// become additional needles labelled with the raw identifier's category.
  explicit PayloadCheck(const std::vector<DeviceTokens>& devices,
                        const std::vector<std::string>& known_xor_keys = {});

  /// Distinct sensitive-information types present in `packet` (sorted by
  /// enum value; each type reported at most once).
  std::vector<SensitiveType> Check(const HttpPacket& packet) const;

  /// True iff Check(packet) is non-empty (cheaper: stops at first hit).
  bool IsSensitive(const HttpPacket& packet) const;

  /// Splits `packets` into (suspicious, normal) preserving order — the
  /// paper's two groups.
  void Split(const std::vector<HttpPacket>& packets,
             std::vector<HttpPacket>* suspicious,
             std::vector<HttpPacket>* normal) const;

 private:
  std::vector<std::string> needles_;
  std::vector<SensitiveType> needle_type_;
  std::unique_ptr<match::AhoCorasick> automaton_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_PAYLOAD_CHECK_H_
