#include "core/detector.h"

#include "net/host.h"

namespace leakdet::core {

std::vector<size_t> Detector::MatchIndices(const HttpPacket& packet) const {
  std::string content = PacketContent(packet);
  std::string domain;
  if (use_host_scope_) {
    domain = net::RegistrableDomain(packet.destination.host);
  }
  return signatures_.Match(content, domain);
}

bool Detector::IsSensitive(const HttpPacket& packet) const {
  return !MatchIndices(packet).empty();
}

std::vector<std::string> Detector::MatchedSignatureIds(
    const HttpPacket& packet) const {
  std::vector<std::string> ids;
  for (size_t idx : MatchIndices(packet)) {
    ids.push_back(signatures_.signatures()[idx].id);
  }
  return ids;
}

std::vector<Detector::MatchExplanation> Detector::Explain(
    const HttpPacket& packet) const {
  std::vector<MatchExplanation> explanations;
  std::string content = PacketContent(packet);
  for (size_t idx : MatchIndices(packet)) {
    const match::ConjunctionSignature& sig = signatures_.signatures()[idx];
    MatchExplanation explanation;
    explanation.signature_id = sig.id;
    explanation.host_scope = sig.host_scope;
    for (const std::string& token : sig.tokens) {
      TokenHit hit;
      hit.token = token;
      hit.offset = content.find(token);  // matches, so find() succeeds
      explanation.hits.push_back(std::move(hit));
    }
    explanations.push_back(std::move(explanation));
  }
  return explanations;
}

}  // namespace leakdet::core
