#ifndef LEAKDET_CORE_PIPELINE_H_
#define LEAKDET_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/distance.h"
#include "core/hcluster.h"
#include "core/siggen.h"
#include "core/siggen_bayes.h"
#include "util/statusor.h"

namespace leakdet::core {

/// End-to-end server-side configuration (§IV-A Fig. 3a): sample N suspicious
/// packets, cluster them under the HTTP packet distance, cut the dendrogram,
/// and emit one conjunction signature per cluster.
struct PipelineOptions {
  /// N, the number of suspicious packets sampled for clustering. The paper
  /// sweeps 100..500.
  size_t sample_size = 300;

  /// Dendrogram cut threshold on the group-average packet distance. The
  /// composite distance has range [0, 6] (six unit-range components).
  /// Same-module packets land below ~1.2; the same SDK template served from
  /// sibling backends (different host, same request shape) lands near ~1.9;
  /// unrelated services sit above ~2.2. 2.0 groups per-SDK, which is what
  /// lets a signature generalize across a module's backends (§IV-A).
  double cut_height = 2.0;

  /// Compressor used for the NCD content distance: "lzw" (default), "lz77h",
  /// or "entropy". The ablation shows lz77h reaches slightly higher peak TP
  /// but clusters more aggressively (its NCD values sit lower), which makes
  /// the detection curve noisier across N; LZW gives the smoothest
  /// Figure-4-shaped sweep at this cut height, so it is the default.
  std::string compressor = "lzw";

  /// How many normal packets to sample for signature screening.
  size_t normal_corpus_size = 2000;

  /// Seed for the sampling RNG (deterministic end to end).
  uint64_t seed = 1;

  /// Worker threads for the pairwise distance matrix (the pipeline's hot
  /// loop). 0 = hardware concurrency; 1 = serial. The result is identical
  /// either way (the distance is a pure function).
  unsigned num_threads = 0;

  DistanceOptions distance;
  SiggenOptions siggen;
};

/// The shared front half of the pipeline: the sampled packets, their
/// clustering, and the screening corpus — inputs to either signature
/// generator (conjunction or Bayes).
struct ClusteringResult {
  /// Indices into the suspicious group of the N sampled packets (sorted).
  std::vector<size_t> sampled_indices;
  /// The sampled packets themselves (same order as sampled_indices).
  std::vector<HttpPacket> sample;
  /// Flat clusters over the sample (positions within `sample`).
  std::vector<std::vector<int32_t>> clusters;
  /// Dendrogram merge heights (diagnostics: choosing cut_height).
  std::vector<double> merge_heights;
  /// Sampled normal-packet contents used for signature screening.
  std::vector<std::string> normal_corpus;
  /// Cache effectiveness of the distance-matrix build (observability).
  DistanceMatrixStats distance_stats;
};

/// Runs sampling, distance computation, and hierarchical clustering
/// (§IV-B/C/D) — everything up to signature generation.
StatusOr<ClusteringResult> RunClustering(
    const std::vector<HttpPacket>& suspicious,
    const std::vector<HttpPacket>& normal, const PipelineOptions& options);

/// Everything the server-side run produces, for evaluation and reports.
struct PipelineResult {
  match::SignatureSet signatures;
  /// Indices into the suspicious group of the N sampled packets.
  std::vector<size_t> sampled_indices;
  /// Clusters over the sample (values are positions within the sample).
  std::vector<std::vector<int32_t>> clusters;
  /// Dendrogram merge heights (diagnostics: choosing cut_height).
  std::vector<double> merge_heights;
  /// Per-cluster signature generation outcomes.
  std::vector<SiggenClusterReport> cluster_reports;
  /// Cache effectiveness of the distance-matrix build (observability).
  DistanceMatrixStats distance_stats;
};

/// Runs the full server-side pipeline.
///
/// `suspicious` is the payload-check-positive group, `normal` the rest
/// (§V-A's manual split, automated by PayloadCheck). Fails if `suspicious`
/// is empty or smaller than `options.sample_size` requires (the sample is
/// truncated to the group size, matching the paper's N <= group size).
StatusOr<PipelineResult> RunPipeline(const std::vector<HttpPacket>& suspicious,
                                     const std::vector<HttpPacket>& normal,
                                     const PipelineOptions& options);

/// Results of the probabilistic-signature variant (the paper's future-work
/// direction; §VI refs [14], [30]).
struct BayesPipelineResult {
  match::BayesSignatureSet signatures;
  std::vector<size_t> sampled_indices;
  std::vector<std::vector<int32_t>> clusters;
};

/// Probabilistic-signature options rider on the shared pipeline knobs.
struct BayesPipelineOptions {
  PipelineOptions base;
  BayesSiggenOptions siggen;
};

/// Runs the same sampling/clustering front end, then generates weighted
/// Bayes signatures instead of conjunctions.
StatusOr<BayesPipelineResult> RunBayesPipeline(
    const std::vector<HttpPacket>& suspicious,
    const std::vector<HttpPacket>& normal,
    const BayesPipelineOptions& options);

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_PIPELINE_H_
