#ifndef LEAKDET_CORE_SIGNATURE_SERVER_H_
#define LEAKDET_CORE_SIGNATURE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "core/pipeline.h"

namespace leakdet::core {

/// The server side of Figure 3(a) as an *ongoing* service rather than a
/// one-shot batch: traffic streams in, the payload check files each packet
/// into the suspicious or normal pool, and once enough new suspicious
/// packets accumulate the server retrains and publishes a new feed version.
/// The device side polls `feed_version()` / `signatures()`.
///
/// Threading contract: Ingest()/Retrain()/signatures()/Feed() must be
/// externally serialized (one training thread — see gateway::TrainerLoop).
/// `feed_version()` is safe to read from any thread without synchronization,
/// which lets pollers (io::FeedServer providers, gateway shards) check for a
/// new feed cheaply. The feed *observer* is the publication hook: it runs on
/// the training thread synchronously after the version advances, so whatever
/// it publishes (e.g. a freshly compiled matcher epoch) is never ahead of
/// `feed_version()`.
class SignatureServer {
 public:
  struct Options {
    /// Retrain after this many new suspicious packets since the last build.
    size_t retrain_after = 200;
    /// Cap on the retained suspicious pool (FIFO eviction); bounds memory
    /// and keeps the sample focused on recent traffic.
    size_t max_suspicious_pool = 50000;
    /// Cap on the retained normal pool (screening corpus source).
    size_t max_normal_pool = 20000;
    PipelineOptions pipeline;
  };

  /// Everything that defines the server's behavior going forward: the
  /// training pools, the since-last-retrain counter, the published feed.
  /// Captured by persistence (store::StoreManager snapshots) and restored on
  /// recovery so a restarted server is bit-identical to the one that crashed.
  struct State {
    std::vector<HttpPacket> suspicious;
    std::vector<HttpPacket> normal;
    size_t new_suspicious = 0;
    uint64_t feed_version = 0;
    match::SignatureSet signatures;
  };

  /// `oracle` must outlive the server. Not owned.
  SignatureServer(const PayloadCheck* oracle, Options options);

  /// Replaces the server's state wholesale (crash recovery). If the restored
  /// feed version is nonzero the feed observer fires with the restored
  /// signature set, exactly as a retrain would — this is how recovery
  /// republishes the pre-crash serving epoch before any WAL replay. Training
  /// thread only, like Ingest().
  void Restore(State state);

  /// Ingests one observed packet. Returns true if this ingestion triggered
  /// a retrain (the feed version advanced).
  bool Ingest(const HttpPacket& packet);

  /// Forces a retrain now (e.g. operator request). No-op without any
  /// suspicious traffic; returns whether a new feed was produced.
  bool Retrain();

  /// Called synchronously after every successful retrain with the new
  /// version and the signature set it produced. The reference is only valid
  /// for the duration of the call — copy (or compile) what you need.
  using FeedObserver =
      std::function<void(uint64_t version, const match::SignatureSet&)>;

  /// Installs the publication hook (replaces any previous one). Set it
  /// before concurrent ingestion starts.
  void SetFeedObserver(FeedObserver observer) {
    feed_observer_ = std::move(observer);
  }

  /// A rewrite applied to every freshly trained signature set before it is
  /// stored or published (federation's K-anonymity gate hooks in here).
  /// Runs on the training thread between the pipeline and the observer;
  /// what it returns *is* the new feed. Deliberately not applied by
  /// Restore(): snapshots capture post-transform feeds, and re-gating a
  /// restored feed against evidence lost in the crash would corrupt it.
  using FeedTransform =
      std::function<match::SignatureSet(uint64_t version,
                                        match::SignatureSet trained)>;

  /// Installs the feed transform (replaces any previous one). Set it before
  /// ingestion starts, like the observer.
  void SetFeedTransform(FeedTransform transform) {
    feed_transform_ = std::move(transform);
  }

  /// Monotonically increasing feed version (0 = no signatures yet).
  /// Safe to call from any thread.
  uint64_t feed_version() const {
    return feed_version_.load(std::memory_order_acquire);
  }

  /// The current signature set (empty before the first retrain).
  const match::SignatureSet& signatures() const { return signatures_; }

  /// Serialized feed for distribution to devices.
  std::string Feed() const { return signatures_.Serialize(); }

  size_t suspicious_pool_size() const { return suspicious_.size(); }
  size_t normal_pool_size() const { return normal_.size(); }

  /// Direct pool access for persistence snapshots. Training thread only.
  const std::vector<HttpPacket>& suspicious_pool() const { return suspicious_; }
  const std::vector<HttpPacket>& normal_pool() const { return normal_; }
  size_t new_suspicious() const { return new_suspicious_; }
  const Options& options() const { return options_; }

  /// Distance-matrix cache statistics of the most recent successful retrain
  /// (zero-initialized before the first one). Same threading contract as
  /// signatures(): read from the training thread.
  const DistanceMatrixStats& last_distance_stats() const {
    return last_distance_stats_;
  }

 private:
  const PayloadCheck* oracle_;
  Options options_;
  std::vector<HttpPacket> suspicious_;
  std::vector<HttpPacket> normal_;
  size_t new_suspicious_ = 0;
  std::atomic<uint64_t> feed_version_{0};
  match::SignatureSet signatures_;
  DistanceMatrixStats last_distance_stats_;
  FeedObserver feed_observer_;
  FeedTransform feed_transform_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_SIGNATURE_SERVER_H_
