#ifndef LEAKDET_CORE_SIGNATURE_SERVER_H_
#define LEAKDET_CORE_SIGNATURE_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "core/pipeline.h"

namespace leakdet::core {

/// The server side of Figure 3(a) as an *ongoing* service rather than a
/// one-shot batch: traffic streams in, the payload check files each packet
/// into the suspicious or normal pool, and once enough new suspicious
/// packets accumulate the server retrains and publishes a new feed version.
/// The device side polls `feed_version()` / `signatures()`.
class SignatureServer {
 public:
  struct Options {
    /// Retrain after this many new suspicious packets since the last build.
    size_t retrain_after = 200;
    /// Cap on the retained suspicious pool (FIFO eviction); bounds memory
    /// and keeps the sample focused on recent traffic.
    size_t max_suspicious_pool = 50000;
    /// Cap on the retained normal pool (screening corpus source).
    size_t max_normal_pool = 20000;
    PipelineOptions pipeline;
  };

  /// `oracle` must outlive the server. Not owned.
  SignatureServer(const PayloadCheck* oracle, Options options);

  /// Ingests one observed packet. Returns true if this ingestion triggered
  /// a retrain (the feed version advanced).
  bool Ingest(const HttpPacket& packet);

  /// Forces a retrain now (e.g. operator request). No-op without any
  /// suspicious traffic; returns whether a new feed was produced.
  bool Retrain();

  /// Monotonically increasing feed version (0 = no signatures yet).
  uint64_t feed_version() const { return feed_version_; }

  /// The current signature set (empty before the first retrain).
  const match::SignatureSet& signatures() const { return signatures_; }

  /// Serialized feed for distribution to devices.
  std::string Feed() const { return signatures_.Serialize(); }

  size_t suspicious_pool_size() const { return suspicious_.size(); }
  size_t normal_pool_size() const { return normal_.size(); }

 private:
  const PayloadCheck* oracle_;
  Options options_;
  std::vector<HttpPacket> suspicious_;
  std::vector<HttpPacket> normal_;
  size_t new_suspicious_ = 0;
  uint64_t feed_version_ = 0;
  match::SignatureSet signatures_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_SIGNATURE_SERVER_H_
