#ifndef LEAKDET_CORE_FLOW_MONITOR_H_
#define LEAKDET_CORE_FLOW_MONITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "core/detector.h"
#include "core/packet.h"

namespace leakdet::core {

/// Outcome of mediating one outgoing request.
enum class FlowVerdict {
  kPassedSilently,   ///< no signature matched; the user is not bothered
  kAllowedByPolicy,  ///< matched; the user (or a remembered choice) allowed
  kBlockedByPolicy,  ///< matched; the user (or a remembered choice) blocked
};

/// Counters over a mediation session.
struct FlowStats {
  size_t silent = 0;
  size_t allowed = 0;
  size_t blocked = 0;
  size_t prompts = 0;  ///< actual user interactions (first decision per key)
};

/// The on-device information-flow-control application of Figure 3(b) as a
/// library: every outgoing HTTP request passes through Mediate(); benign
/// traffic flows silently, while signature matches trigger one user decision
/// per (application, destination domain) which is then remembered — the
/// "fine grained" control the paper's abstract promises, implemented without
/// any Android framework modification (the component simply proxies the
/// other applications' network I/O).
class FlowMonitor {
 public:
  /// Asks the user about a flagged flow; returns true to allow. Called at
  /// most once per (app_id, domain) — later packets reuse the decision.
  using PromptFn = std::function<bool(uint32_t app_id,
                                      const std::string& domain)>;

  /// `detector` is not owned and must outlive the monitor. A null `prompt`
  /// blocks every flagged flow (fail-safe default).
  FlowMonitor(const Detector* detector, PromptFn prompt)
      : detector_(detector), prompt_(std::move(prompt)) {}

  /// Mediates one outgoing request.
  FlowVerdict Mediate(const HttpPacket& packet);

  /// The remembered decision for (app, domain), if any.
  bool HasDecision(uint32_t app_id, const std::string& domain) const {
    return decisions_.count({app_id, domain}) > 0;
  }

  /// Clears all remembered decisions (e.g. after a signature-feed update,
  /// when old verdicts may no longer be justified).
  void ForgetDecisions() { decisions_.clear(); }

  const FlowStats& stats() const { return stats_; }
  size_t remembered_decisions() const { return decisions_.size(); }

 private:
  const Detector* detector_;
  PromptFn prompt_;
  std::map<std::pair<uint32_t, std::string>, bool> decisions_;
  FlowStats stats_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_FLOW_MONITOR_H_
