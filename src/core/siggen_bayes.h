#ifndef LEAKDET_CORE_SIGGEN_BAYES_H_
#define LEAKDET_CORE_SIGGEN_BAYES_H_

#include <string>
#include <vector>

#include "core/packet.h"
#include "match/bayes_signature.h"

namespace leakdet::core {

/// Options for probabilistic signature generation.
struct BayesSiggenOptions {
  /// Minimum candidate-token length (as in conjunction generation).
  size_t min_token_len = 6;

  /// A candidate token must occur in at least this fraction of the cluster
  /// (unlike a conjunction, not necessarily in all members).
  double min_positive_df = 0.5;

  /// Additive smoothing for the log-odds weight
  ///   w = log((df+ + eps) / (df- + eps)).
  double epsilon = 0.01;

  /// Initial threshold as a fraction of the weakest cluster member's score:
  /// lower values favor recall on polymorphic variants.
  double threshold_fraction = 0.6;

  /// The threshold is raised (recall permitting) until at most this fraction
  /// of the normal corpus scores above it.
  double max_normal_fp = 0.005;

  /// Cap on weighted tokens per signature.
  size_t max_tokens_per_signature = 24;

  /// Clusters smaller than this produce no signature.
  size_t min_cluster_size = 1;
};

/// Generates one Bayes signature per cluster: candidate tokens are mined
/// from cluster sub-samples (so majority — not only invariant — tokens are
/// found), weighted by their leaking-vs-normal log-odds, and thresholded to
/// bound false positives on the normal corpus.
class BayesSignatureGenerator {
 public:
  explicit BayesSignatureGenerator(BayesSiggenOptions options = {})
      : options_(options) {}

  match::BayesSignatureSet Generate(
      const std::vector<HttpPacket>& packets,
      const std::vector<std::vector<int32_t>>& clusters,
      const std::vector<std::string>& normal_corpus) const;

  const BayesSiggenOptions& options() const { return options_; }

 private:
  BayesSiggenOptions options_;
};

/// Detector facade over a BayesSignatureSet (mirrors core::Detector).
class BayesDetector {
 public:
  explicit BayesDetector(match::BayesSignatureSet signatures)
      : signatures_(std::move(signatures)) {}

  bool IsSensitive(const HttpPacket& packet) const {
    return signatures_.Matches(PacketContent(packet));
  }

  const match::BayesSignatureSet& signatures() const { return signatures_; }

 private:
  match::BayesSignatureSet signatures_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_SIGGEN_BAYES_H_
