#ifndef LEAKDET_CORE_DETECTOR_H_
#define LEAKDET_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "core/packet.h"
#include "match/signature.h"

namespace leakdet::core {

/// The detection side of the system: the on-device component applies the
/// server-generated SignatureSet to each outgoing packet (§IV-A, Fig. 3b).
class Detector {
 public:
  /// `use_host_scope` controls whether signature host scopes are enforced
  /// (matching the destination's registrable domain).
  explicit Detector(match::SignatureSet signatures, bool use_host_scope = true)
      : signatures_(std::move(signatures)), use_host_scope_(use_host_scope) {}

  /// True iff any signature matches the packet.
  bool IsSensitive(const HttpPacket& packet) const;

  /// Ids of all matching signatures ("sig-0", ...).
  std::vector<std::string> MatchedSignatureIds(const HttpPacket& packet) const;

  /// One token occurrence within a flagged packet.
  struct TokenHit {
    std::string token;
    size_t offset = 0;  ///< byte offset of the first occurrence in content
  };
  /// Why a packet was flagged: one entry per matching signature with every
  /// required token and where it first occurs. Analyst/triage tooling —
  /// "which bytes of this request are the leak?".
  struct MatchExplanation {
    std::string signature_id;
    std::string host_scope;
    std::vector<TokenHit> hits;
  };
  std::vector<MatchExplanation> Explain(const HttpPacket& packet) const;

  const match::SignatureSet& signatures() const { return signatures_; }

 private:
  std::vector<size_t> MatchIndices(const HttpPacket& packet) const;

  match::SignatureSet signatures_;
  bool use_host_scope_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_DETECTOR_H_
