#ifndef LEAKDET_CORE_PACKET_H_
#define LEAKDET_CORE_PACKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "http/message.h"
#include "net/endpoint.h"

namespace leakdet::core {

/// One observed application HTTP packet: the unit of the paper's dataset.
/// Combines the destination (`p = {ip, port, host}`, §IV-B) with the three
/// content components (`p = {rline, cookie, body}`, §IV-C), plus provenance.
struct HttpPacket {
  uint32_t app_id = 0;       ///< which application emitted it
  net::Endpoint destination;
  std::string request_line;  ///< "GET /ad?x=1 HTTP/1.1"
  std::string cookie;        ///< Cookie header value ("" if none)
  std::string body;          ///< message body ("" for bodyless GETs)

  friend bool operator==(const HttpPacket& a, const HttpPacket& b) {
    return a.app_id == b.app_id && a.destination == b.destination &&
           a.request_line == b.request_line && a.cookie == b.cookie &&
           a.body == b.body;
  }
};

/// Builds an HttpPacket from a full request message plus its destination.
HttpPacket MakePacket(uint32_t app_id, const net::Endpoint& destination,
                      const http::HttpRequest& request);

/// The canonical content string for signature generation and matching:
/// request-line, cookie, and body joined by '\n'. Signatures are extracted
/// from and matched against exactly this string, so generation and detection
/// agree byte-for-byte.
std::string PacketContent(const HttpPacket& packet);

/// Batch form of PacketContent.
std::vector<std::string> PacketContents(const std::vector<HttpPacket>& packets);

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_PACKET_H_
