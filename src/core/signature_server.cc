#include "core/signature_server.h"

namespace leakdet::core {

SignatureServer::SignatureServer(const PayloadCheck* oracle, Options options)
    : oracle_(oracle), options_(options) {}

void SignatureServer::Restore(State state) {
  suspicious_ = std::move(state.suspicious);
  normal_ = std::move(state.normal);
  new_suspicious_ = state.new_suspicious;
  signatures_ = std::move(state.signatures);
  last_distance_stats_ = DistanceMatrixStats{};
  feed_version_.store(state.feed_version, std::memory_order_release);
  if (state.feed_version != 0 && feed_observer_) {
    feed_observer_(state.feed_version, signatures_);
  }
}

bool SignatureServer::Ingest(const HttpPacket& packet) {
  if (oracle_->IsSensitive(packet)) {
    suspicious_.push_back(packet);
    if (suspicious_.size() > options_.max_suspicious_pool) {
      suspicious_.erase(suspicious_.begin(),
                        suspicious_.begin() +
                            static_cast<long>(suspicious_.size() -
                                              options_.max_suspicious_pool));
    }
    ++new_suspicious_;
    if (new_suspicious_ >= options_.retrain_after) {
      return Retrain();
    }
  } else {
    normal_.push_back(packet);
    if (normal_.size() > options_.max_normal_pool) {
      normal_.erase(normal_.begin(),
                    normal_.begin() + static_cast<long>(
                                          normal_.size() -
                                          options_.max_normal_pool));
    }
  }
  return false;
}

bool SignatureServer::Retrain() {
  if (suspicious_.empty()) return false;
  PipelineOptions options = options_.pipeline;
  // Vary the sampling seed per feed version so successive retrains see
  // fresh samples (still deterministic overall).
  uint64_t version = feed_version_.load(std::memory_order_relaxed);
  options.seed = options_.pipeline.seed + version * 0x9E37ULL;
  StatusOr<PipelineResult> result = RunPipeline(suspicious_, normal_, options);
  if (!result.ok()) return false;
  if (feed_transform_) {
    signatures_ = feed_transform_(version + 1, std::move(result->signatures));
  } else {
    signatures_ = std::move(result->signatures);
  }
  last_distance_stats_ = result->distance_stats;
  feed_version_.store(version + 1, std::memory_order_release);
  new_suspicious_ = 0;
  if (feed_observer_) feed_observer_(version + 1, signatures_);
  return true;
}

}  // namespace leakdet::core
