#include "core/distance.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "net/ipv4.h"
#include "text/edit_distance.h"

namespace leakdet::core {

double PacketDistance::DestinationDistance(const HttpPacket& x,
                                           const HttpPacket& y) const {
  const net::Endpoint& ex = x.destination;
  const net::Endpoint& ey = y.destination;

  double ip_sim =
      static_cast<double>(net::CommonPrefixBits(ex.ip, ey.ip)) / 32.0;
  if (options_.org_registry != nullptr) {
    auto org_x = options_.org_registry->Lookup(ex.ip);
    auto org_y = options_.org_registry->Lookup(ey.ip);
    if (org_x && org_y) {
      ip_sim = (*org_x == *org_y) ? 1.0 : 0.0;
    }
  }
  double port_sim = (ex.port == ey.port) ? 1.0 : 0.0;
  double host_dist = text::NormalizedEditDistance(ex.host, ey.host);

  double d_ip, d_port;
  if (options_.literal_similarity_orientation) {
    // The formulas exactly as printed in §IV-B (similarities).
    d_ip = ip_sim;
    d_port = port_sim;
  } else {
    d_ip = 1.0 - ip_sim;
    d_port = 1.0 - port_sim;
  }
  return options_.ip_weight * d_ip + options_.port_weight * d_port +
         options_.host_weight * host_dist;
}

double PacketDistance::ContentDistance(const HttpPacket& x,
                                       const HttpPacket& y) const {
  double d_rline = ncd_->Ncd(x.request_line, y.request_line);
  double d_cookie = ncd_->Ncd(x.cookie, y.cookie);
  double d_body = ncd_->Ncd(x.body, y.body);
  return options_.rline_weight * d_rline + options_.cookie_weight * d_cookie +
         options_.body_weight * d_body;
}

double PacketDistance::Distance(const HttpPacket& x,
                                const HttpPacket& y) const {
  double d = 0;
  if (options_.use_destination) d += DestinationDistance(x, y);
  if (options_.use_content) d += ContentDistance(x, y);
  return d;
}

double PacketDistance::MaxDistance() const {
  double m = 0;
  if (options_.use_destination) {
    m += options_.ip_weight + options_.port_weight + options_.host_weight;
  }
  if (options_.use_content) {
    m += options_.rline_weight + options_.cookie_weight + options_.body_weight;
  }
  return m;
}

DistanceMatrix::DistanceMatrix(size_t n)
    : n_(n), data_(n < 2 ? 0 : n * (n - 1) / 2, 0.0) {}

size_t DistanceMatrix::index(size_t i, size_t j) const {
  assert(i != j && i < n_ && j < n_);
  if (i > j) std::swap(i, j);
  // Condensed index of (i, j), i < j: elements before row i plus offset.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(size_t i, size_t j) const {
  if (i == j) return 0.0;
  return data_[index(i, j)];
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  data_[index(i, j)] = value;
}

DistanceMatrix ComputeDistanceMatrix(const std::vector<HttpPacket>& packets,
                                     const PacketDistance& metric) {
  DistanceMatrix m(packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    for (size_t j = i + 1; j < packets.size(); ++j) {
      m.set(i, j, metric.Distance(packets[i], packets[j]));
    }
  }
  return m;
}

DistanceMatrix ComputeDistanceMatrixParallel(
    const std::vector<HttpPacket>& packets,
    const compress::Compressor* compressor, const DistanceOptions& options,
    unsigned num_threads) {
  const size_t n = packets.size();
  DistanceMatrix m(n);
  if (n < 2) return m;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(num_threads, static_cast<unsigned>(n));
  if (num_threads <= 1) {
    compress::NcdCalculator ncd(compressor);
    PacketDistance metric(&ncd, options);
    return ComputeDistanceMatrix(packets, metric);
  }
  // Distribute rows round-robin: upper-triangular row lengths shrink with
  // i, so round-robin balances work far better than contiguous blocks.
  // Writes are disjoint cells of the condensed matrix — no locking needed.
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] {
      compress::NcdCalculator ncd(compressor);  // thread-local cache
      PacketDistance metric(&ncd, options);
      for (size_t i = w; i + 1 < n; i += num_threads) {
        for (size_t j = i + 1; j < n; ++j) {
          m.set(i, j, metric.Distance(packets[i], packets[j]));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return m;
}

}  // namespace leakdet::core
