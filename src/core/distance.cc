#include "core/distance.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/ipv4.h"
#include "text/edit_distance.h"

namespace leakdet::core {

double PacketDistance::CombineDestination(const DistanceOptions& options,
                                          double ip_sim, double port_sim,
                                          double host_dist) {
  double d_ip, d_port;
  if (options.literal_similarity_orientation) {
    // The formulas exactly as printed in §IV-B (similarities).
    d_ip = ip_sim;
    d_port = port_sim;
  } else {
    d_ip = 1.0 - ip_sim;
    d_port = 1.0 - port_sim;
  }
  return options.ip_weight * d_ip + options.port_weight * d_port +
         options.host_weight * host_dist;
}

double PacketDistance::CombineContent(const DistanceOptions& options,
                                      double d_rline, double d_cookie,
                                      double d_body) {
  return options.rline_weight * d_rline + options.cookie_weight * d_cookie +
         options.body_weight * d_body;
}

double PacketDistance::DestinationDistance(const HttpPacket& x,
                                           const HttpPacket& y) const {
  const net::Endpoint& ex = x.destination;
  const net::Endpoint& ey = y.destination;

  double ip_sim =
      static_cast<double>(net::CommonPrefixBits(ex.ip, ey.ip)) / 32.0;
  if (options_.org_registry != nullptr) {
    auto org_x = options_.org_registry->Lookup(ex.ip);
    auto org_y = options_.org_registry->Lookup(ey.ip);
    if (org_x && org_y) {
      ip_sim = (*org_x == *org_y) ? 1.0 : 0.0;
    }
  }
  double port_sim = (ex.port == ey.port) ? 1.0 : 0.0;
  double host_dist = text::NormalizedEditDistance(ex.host, ey.host);
  return CombineDestination(options_, ip_sim, port_sim, host_dist);
}

double PacketDistance::ContentDistance(const HttpPacket& x,
                                       const HttpPacket& y) const {
  double d_rline = ncd_->Ncd(x.request_line, y.request_line);
  double d_cookie = ncd_->Ncd(x.cookie, y.cookie);
  double d_body = ncd_->Ncd(x.body, y.body);
  return CombineContent(options_, d_rline, d_cookie, d_body);
}

double PacketDistance::Distance(const HttpPacket& x,
                                const HttpPacket& y) const {
  double d = 0;
  if (options_.use_destination) d += DestinationDistance(x, y);
  if (options_.use_content) d += ContentDistance(x, y);
  return d;
}

double PacketDistance::MaxDistance() const {
  double m = 0;
  if (options_.use_destination) {
    m += options_.ip_weight + options_.port_weight + options_.host_weight;
  }
  if (options_.use_content) {
    m += options_.rline_weight + options_.cookie_weight + options_.body_weight;
  }
  return m;
}

DistanceMatrix::DistanceMatrix(size_t n)
    : n_(n), data_(n < 2 ? 0 : n * (n - 1) / 2, 0.0) {}

size_t DistanceMatrix::index(size_t i, size_t j) const {
  assert(i != j && i < n_ && j < n_);
  if (i > j) std::swap(i, j);
  // Condensed index of (i, j), i < j: elements before row i plus offset.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(size_t i, size_t j) const {
  if (i == j) return 0.0;
  return data_[index(i, j)];
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  data_[index(i, j)] = value;
}

DistanceMatrix ComputeDistanceMatrix(const std::vector<HttpPacket>& packets,
                                     const PacketDistance& metric) {
  DistanceMatrix m(packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    for (size_t j = i + 1; j < packets.size(); ++j) {
      m.set(i, j, metric.Distance(packets[i], packets[j]));
    }
  }
  return m;
}

namespace {

/// Per-packet interned field ids (indexes into the interners' string lists).
struct PacketIds {
  uint32_t rline;
  uint32_t cookie;
  uint32_t body;
  uint32_t host;
};

/// Dense-id string interner. The views key the map directly — they point
/// into the packets' own field storage, which outlives the matrix build —
/// so interning copies nothing.
class Interner {
 public:
  uint32_t Intern(std::string_view s) {
    auto [it, inserted] =
        map_.try_emplace(s, static_cast<uint32_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  const std::vector<std::string_view>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string_view, uint32_t> map_;
  std::vector<std::string_view> strings_;
};

/// Runs `worker` on `num_threads` threads (inline when <= 1).
template <typename Fn>
void RunWorkers(unsigned num_threads, const Fn& worker) {
  if (num_threads <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();
}

}  // namespace

DistanceMatrix ComputeDistanceMatrixParallel(
    const std::vector<HttpPacket>& packets,
    const compress::Compressor* compressor, const DistanceOptions& options,
    unsigned num_threads, DistanceMatrixStats* stats) {
  const auto build_start = std::chrono::steady_clock::now();
  const size_t n = packets.size();
  DistanceMatrix m(n);
  if (stats != nullptr) {
    *stats = DistanceMatrixStats{};
    stats->packets = n;
    stats->pairs = n < 2 ? 0 : n * (n - 1) / 2;
  }
  if (n < 2) return m;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(num_threads, static_cast<unsigned>(n));

  // Intern per-field strings: ad-module templates make duplicates
  // ubiquitous, so the distinct universe is much smaller than 3n strings.
  Interner content;
  Interner hosts;
  std::vector<PacketIds> ids(n);
  for (size_t i = 0; i < n; ++i) {
    const HttpPacket& p = packets[i];
    ids[i] = PacketIds{content.Intern(p.request_line),
                       content.Intern(p.cookie), content.Intern(p.body),
                       hosts.Intern(p.destination.host)};
  }

  // Resolve the ownership oracle once per packet instead of once per pair.
  std::vector<std::optional<std::string_view>> orgs;
  if (options.use_destination && options.org_registry != nullptr) {
    orgs.resize(n);
    for (size_t i = 0; i < n; ++i) {
      orgs[i] = options.org_registry->Lookup(packets[i].destination.ip);
    }
  }

  // One parallel pass over the distinct universe for all singleton C(x);
  // pair NCDs then go through the sharded thread-shared cache.
  compress::NcdPairCache ncd(compressor, content.strings());
  if (options.use_content) {
    ncd.PrecomputeSizes(num_threads);
  }

  // Memoize NormalizedEditDistance over distinct host pairs: the condensed
  // host matrix is the memo, filled in one parallel pass (never more work
  // than the old per-pair evaluation, since distinct hosts <= packets).
  const std::vector<std::string_view>& host_strings = hosts.strings();
  const size_t num_hosts = host_strings.size();
  DistanceMatrix host_dist(num_hosts);
  if (options.use_destination && num_hosts >= 2) {
    std::atomic<size_t> host_cursor{0};
    const size_t host_chunk = std::max<size_t>(1, num_hosts / 64);
    RunWorkers(num_threads, [&] {
      for (;;) {
        size_t begin =
            host_cursor.fetch_add(host_chunk, std::memory_order_relaxed);
        if (begin + 1 >= num_hosts) return;
        size_t end = std::min(num_hosts - 1, begin + host_chunk);
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = i + 1; j < num_hosts; ++j) {
            host_dist.set(
                i, j,
                text::NormalizedEditDistance(host_strings[i],
                                             host_strings[j]));
          }
        }
      }
    });
  }

  // Pairwise loop: rows claimed in chunks off an atomic cursor, so threads
  // whose rows are cheap (cache hits) steal more work. Writes are disjoint
  // cells of the condensed matrix — no locking needed.
  std::atomic<size_t> row_cursor{0};
  const size_t row_chunk =
      std::max<size_t>(1, n / (static_cast<size_t>(num_threads) * 16));
  RunWorkers(num_threads, [&] {
    for (;;) {
      size_t begin = row_cursor.fetch_add(row_chunk, std::memory_order_relaxed);
      if (begin + 1 >= n) return;
      size_t end = std::min(n - 1, begin + row_chunk);
      for (size_t i = begin; i < end; ++i) {
        const PacketIds& xi = ids[i];
        const net::Endpoint& ex = packets[i].destination;
        for (size_t j = i + 1; j < n; ++j) {
          const PacketIds& xj = ids[j];
          double d = 0;
          if (options.use_destination) {
            const net::Endpoint& ey = packets[j].destination;
            double ip_sim =
                static_cast<double>(net::CommonPrefixBits(ex.ip, ey.ip)) /
                32.0;
            if (options.org_registry != nullptr) {
              if (orgs[i] && orgs[j]) {
                ip_sim = (*orgs[i] == *orgs[j]) ? 1.0 : 0.0;
              }
            }
            double port_sim = (ex.port == ey.port) ? 1.0 : 0.0;
            d += PacketDistance::CombineDestination(
                options, ip_sim, port_sim, host_dist.at(xi.host, xj.host));
          }
          if (options.use_content) {
            double d_rline = ncd.Ncd(xi.rline, xj.rline);
            double d_cookie = ncd.Ncd(xi.cookie, xj.cookie);
            double d_body = ncd.Ncd(xi.body, xj.body);
            d += PacketDistance::CombineContent(options, d_rline, d_cookie,
                                                d_body);
          }
          m.set(i, j, d);
        }
      }
    }
  });

  if (stats != nullptr) {
    stats->distinct_content_strings = content.strings().size();
    stats->distinct_hosts = num_hosts;
    stats->singleton_compressions =
        options.use_content ? content.strings().size() : 0;
    stats->ncd_pair_hits = ncd.pair_hits();
    stats->ncd_pairs_computed = ncd.pairs_computed();
    stats->host_pairs_computed =
        (options.use_destination && num_hosts >= 2)
            ? static_cast<uint64_t>(num_hosts) * (num_hosts - 1) / 2
            : 0;
    stats->distance_build_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - build_start)
            .count());
  }
  return m;
}

}  // namespace leakdet::core
