#ifndef LEAKDET_CORE_SIGGEN_SEQ_H_
#define LEAKDET_CORE_SIGGEN_SEQ_H_

#include <string>
#include <vector>

#include "core/packet.h"
#include "core/siggen.h"
#include "match/subsequence_signature.h"

namespace leakdet::core {

/// Generates token-subsequence signatures: the cluster's invariant tokens,
/// ordered by their position in the cluster's packets and pruned until the
/// ordered match holds for every member. Shares SiggenOptions with the
/// conjunction generator (same screening semantics).
class SubsequenceSignatureGenerator {
 public:
  explicit SubsequenceSignatureGenerator(SiggenOptions options = {})
      : options_(options) {}

  match::SubsequenceSignatureSet Generate(
      const std::vector<HttpPacket>& packets,
      const std::vector<std::vector<int32_t>>& clusters,
      const std::vector<std::string>& normal_corpus) const;

  const SiggenOptions& options() const { return options_; }

 private:
  SiggenOptions options_;
};

/// Detector facade over a SubsequenceSignatureSet (mirrors core::Detector).
class SubsequenceDetector {
 public:
  explicit SubsequenceDetector(match::SubsequenceSignatureSet signatures,
                               bool use_host_scope = false)
      : signatures_(std::move(signatures)), use_host_scope_(use_host_scope) {}

  bool IsSensitive(const HttpPacket& packet) const;

  const match::SubsequenceSignatureSet& signatures() const {
    return signatures_;
  }

 private:
  match::SubsequenceSignatureSet signatures_;
  bool use_host_scope_;
};

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_SIGGEN_SEQ_H_
