#include "core/siggen_seq.h"

#include <algorithm>

#include "net/host.h"
#include "text/token_extract.h"

namespace leakdet::core {

namespace {

double DocumentFrequency(const std::string& token,
                         const std::vector<std::string>& corpus) {
  if (corpus.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& doc : corpus) {
    if (doc.find(token) != std::string::npos) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(corpus.size());
}

/// Index of the first token (in order) that cannot be matched greedily in
/// `content`, or -1 when the whole sequence matches.
int FirstOrderingViolation(const std::vector<std::string>& tokens,
                           std::string_view content) {
  size_t offset = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    size_t pos = content.find(tokens[i], offset);
    if (pos == std::string_view::npos) return static_cast<int>(i);
    offset = pos + tokens[i].size();
  }
  return -1;
}

}  // namespace

match::SubsequenceSignatureSet SubsequenceSignatureGenerator::Generate(
    const std::vector<HttpPacket>& packets,
    const std::vector<std::vector<int32_t>>& clusters,
    const std::vector<std::string>& normal_corpus) const {
  std::vector<match::SubsequenceSignature> signatures;

  for (const std::vector<int32_t>& cluster : clusters) {
    if (cluster.size() < options_.min_cluster_size) continue;
    std::vector<std::string> contents;
    contents.reserve(cluster.size());
    for (int32_t idx : cluster) {
      contents.push_back(PacketContent(packets[static_cast<size_t>(idx)]));
    }

    // Invariant tokens, screened as in the conjunction generator.
    text::TokenExtractOptions tex;
    tex.min_token_len = options_.min_token_len;
    tex.max_tokens = options_.max_tokens_per_signature * 4;
    std::vector<std::string> raw = text::ExtractInvariantTokens(contents, tex);
    std::vector<std::string> tokens;
    for (std::string& tok : raw) {
      if (DocumentFrequency(tok, normal_corpus) <=
          options_.max_token_normal_df) {
        tokens.push_back(std::move(tok));
      }
      if (tokens.size() >= options_.max_tokens_per_signature) break;
    }
    if (tokens.empty()) continue;

    // Order tokens by their position in the first member...
    std::stable_sort(tokens.begin(), tokens.end(),
                     [&contents](const std::string& a, const std::string& b) {
                       return contents[0].find(a) < contents[0].find(b);
                     });
    // ...then prune until the ordered match holds for every member. Each
    // round drops the first violating token, so this terminates.
    while (!tokens.empty()) {
      int violation = -1;
      for (const std::string& content : contents) {
        violation = FirstOrderingViolation(tokens, content);
        if (violation >= 0) break;
      }
      if (violation < 0) break;
      tokens.erase(tokens.begin() + violation);
    }
    if (tokens.empty()) continue;

    // Whole-signature false-positive screen (ordered match on the corpus).
    if (!normal_corpus.empty()) {
      size_t fp = 0;
      for (const std::string& doc : normal_corpus) {
        if (FirstOrderingViolation(tokens, doc) < 0) ++fp;
      }
      if (static_cast<double>(fp) /
              static_cast<double>(normal_corpus.size()) >
          options_.max_signature_normal_fp) {
        continue;
      }
    }

    match::SubsequenceSignature sig;
    sig.id = "qsig-" + std::to_string(signatures.size());
    sig.tokens = std::move(tokens);
    sig.cluster_size = static_cast<uint32_t>(cluster.size());
    if (options_.scope_by_host) {
      std::string domain = net::RegistrableDomain(
          packets[static_cast<size_t>(cluster[0])].destination.host);
      bool unanimous = true;
      for (int32_t idx : cluster) {
        if (net::RegistrableDomain(
                packets[static_cast<size_t>(idx)].destination.host) !=
            domain) {
          unanimous = false;
          break;
        }
      }
      if (unanimous) sig.host_scope = domain;
    }
    signatures.push_back(std::move(sig));
  }
  return match::SubsequenceSignatureSet(std::move(signatures));
}

bool SubsequenceDetector::IsSensitive(const HttpPacket& packet) const {
  std::string content = PacketContent(packet);
  std::string domain;
  if (use_host_scope_) {
    domain = net::RegistrableDomain(packet.destination.host);
  }
  return signatures_.Matches(content, domain);
}

}  // namespace leakdet::core
