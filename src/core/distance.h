#ifndef LEAKDET_CORE_DISTANCE_H_
#define LEAKDET_CORE_DISTANCE_H_

#include <vector>

#include "compress/ncd.h"
#include "core/packet.h"
#include "net/org_registry.h"

namespace leakdet::core {

/// Knobs for the composite HTTP packet distance (§IV-B/C/D).
struct DistanceOptions {
  /// Optional WHOIS-style ownership oracle (§VI): when set, the IP distance
  /// is *verified* — same registered organization forces d_ip = 0, different
  /// registered organizations force d_ip = 1 (correcting the "close IP,
  /// different owner" error the paper warns about), and unregistered
  /// addresses fall back to the prefix distance. Not owned.
  const net::OrgRegistry* org_registry = nullptr;

  /// Include d_dst = d_ip + d_port + d_host. Ablation: destination-only /
  /// content-only clustering.
  bool use_destination = true;
  /// Include d_header = d_rline + d_cookie + d_body.
  bool use_content = true;

  /// The paper writes d_ip = lmatch/32 and d_port = match(..) — which are
  /// *similarities* (1 = identical destination). Read literally they would
  /// push identical destinations apart, contradicting §IV-A ("results sent
  /// to the same server to be clustered together") and the reported
  /// accuracy. By default we use the distance orientation:
  ///   d_ip = 1 - lmatch/32,  d_port = 1 - match.
  /// Setting this true uses the literal published formulas instead; the
  /// ablation bench quantifies the difference.
  bool literal_similarity_orientation = false;

  /// Per-component weights (all 1.0 in the paper, where the composite is a
  /// plain sum).
  double ip_weight = 1.0;
  double port_weight = 1.0;
  double host_weight = 1.0;
  double rline_weight = 1.0;
  double cookie_weight = 1.0;
  double body_weight = 1.0;
};

/// Computes the paper's packet distance
///   d_pkt(px, py) = d_dst(px, py) + d_header(px, py).
/// Content distances use NCD through a caching calculator, so building a
/// full distance matrix compresses each packet's fields only once.
class PacketDistance {
 public:
  /// `ncd` must outlive this object. Not owned.
  PacketDistance(compress::NcdCalculator* ncd, DistanceOptions options = {})
      : ncd_(ncd), options_(options) {}

  /// d_dst = d_ip + d_port + d_host (§IV-B); each component in [0, 1].
  double DestinationDistance(const HttpPacket& x, const HttpPacket& y) const;

  /// d_header = ncd(rline) + ncd(cookie) + ncd(body) (§IV-C).
  double ContentDistance(const HttpPacket& x, const HttpPacket& y) const;

  /// d_pkt = d_dst + d_header (§IV-D), honoring the enable flags.
  double Distance(const HttpPacket& x, const HttpPacket& y) const;

  /// Largest possible Distance() under the current options (for
  /// normalization in reports): the sum of the active component weights.
  double MaxDistance() const;

  const DistanceOptions& options() const { return options_; }

 private:
  compress::NcdCalculator* ncd_;
  DistanceOptions options_;
};

/// Symmetric pairwise-distance matrix in condensed form (upper triangle,
/// row-major). Diagonal is implicitly zero.
class DistanceMatrix {
 public:
  /// Builds an n-point matrix initialized to zero.
  explicit DistanceMatrix(size_t n);

  double at(size_t i, size_t j) const;
  void set(size_t i, size_t j, double value);

  size_t size() const { return n_; }

 private:
  size_t index(size_t i, size_t j) const;

  size_t n_;
  std::vector<double> data_;
};

/// Computes all pairwise distances of `packets` under `metric`.
DistanceMatrix ComputeDistanceMatrix(const std::vector<HttpPacket>& packets,
                                     const PacketDistance& metric);

/// Parallel variant: rows are distributed over `num_threads` workers, each
/// with its own NCD cache built over the shared `compressor` (the distance
/// is a pure function, so the result is bit-identical to the serial path —
/// asserted by tests). `num_threads` 0 = hardware concurrency.
DistanceMatrix ComputeDistanceMatrixParallel(
    const std::vector<HttpPacket>& packets, const compress::Compressor* compressor,
    const DistanceOptions& options, unsigned num_threads = 0);

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_DISTANCE_H_
