#ifndef LEAKDET_CORE_DISTANCE_H_
#define LEAKDET_CORE_DISTANCE_H_

#include <vector>

#include "compress/ncd.h"
#include "core/packet.h"
#include "net/org_registry.h"

namespace leakdet::core {

/// Knobs for the composite HTTP packet distance (§IV-B/C/D).
struct DistanceOptions {
  /// Optional WHOIS-style ownership oracle (§VI): when set, the IP distance
  /// is *verified* — same registered organization forces d_ip = 0, different
  /// registered organizations force d_ip = 1 (correcting the "close IP,
  /// different owner" error the paper warns about), and unregistered
  /// addresses fall back to the prefix distance. Not owned.
  const net::OrgRegistry* org_registry = nullptr;

  /// Include d_dst = d_ip + d_port + d_host. Ablation: destination-only /
  /// content-only clustering.
  bool use_destination = true;
  /// Include d_header = d_rline + d_cookie + d_body.
  bool use_content = true;

  /// The paper writes d_ip = lmatch/32 and d_port = match(..) — which are
  /// *similarities* (1 = identical destination). Read literally they would
  /// push identical destinations apart, contradicting §IV-A ("results sent
  /// to the same server to be clustered together") and the reported
  /// accuracy. By default we use the distance orientation:
  ///   d_ip = 1 - lmatch/32,  d_port = 1 - match.
  /// Setting this true uses the literal published formulas instead; the
  /// ablation bench quantifies the difference.
  bool literal_similarity_orientation = false;

  /// Per-component weights (all 1.0 in the paper, where the composite is a
  /// plain sum).
  double ip_weight = 1.0;
  double port_weight = 1.0;
  double host_weight = 1.0;
  double rline_weight = 1.0;
  double cookie_weight = 1.0;
  double body_weight = 1.0;
};

/// Computes the paper's packet distance
///   d_pkt(px, py) = d_dst(px, py) + d_header(px, py).
/// Content distances use NCD through a caching calculator, so building a
/// full distance matrix compresses each packet's fields only once.
class PacketDistance {
 public:
  /// `ncd` must outlive this object. Not owned.
  PacketDistance(compress::NcdCalculator* ncd, DistanceOptions options = {})
      : ncd_(ncd), options_(options) {}

  /// d_dst = d_ip + d_port + d_host (§IV-B); each component in [0, 1].
  double DestinationDistance(const HttpPacket& x, const HttpPacket& y) const;

  /// d_header = ncd(rline) + ncd(cookie) + ncd(body) (§IV-C).
  double ContentDistance(const HttpPacket& x, const HttpPacket& y) const;

  /// Weighted destination combination (orientation flag applied). Shared by
  /// DestinationDistance and the optimized matrix builder so both perform
  /// bit-identical floating-point arithmetic.
  static double CombineDestination(const DistanceOptions& options,
                                   double ip_sim, double port_sim,
                                   double host_dist);

  /// Weighted content combination; same sharing rationale.
  static double CombineContent(const DistanceOptions& options, double d_rline,
                               double d_cookie, double d_body);

  /// d_pkt = d_dst + d_header (§IV-D), honoring the enable flags.
  double Distance(const HttpPacket& x, const HttpPacket& y) const;

  /// Largest possible Distance() under the current options (for
  /// normalization in reports): the sum of the active component weights.
  double MaxDistance() const;

  const DistanceOptions& options() const { return options_; }

 private:
  compress::NcdCalculator* ncd_;
  DistanceOptions options_;
};

/// Symmetric pairwise-distance matrix in condensed form (upper triangle,
/// row-major). Diagonal is implicitly zero.
class DistanceMatrix {
 public:
  /// Builds an n-point matrix initialized to zero.
  explicit DistanceMatrix(size_t n);

  double at(size_t i, size_t j) const;
  void set(size_t i, size_t j, double value);

  size_t size() const { return n_; }

 private:
  size_t index(size_t i, size_t j) const;

  size_t n_;
  std::vector<double> data_;
};

/// Computes all pairwise distances of `packets` under `metric`. Every pair
/// is evaluated from scratch (only the per-calculator C(x) memo helps); this
/// is the uncached reference the optimized builder is verified against.
DistanceMatrix ComputeDistanceMatrix(const std::vector<HttpPacket>& packets,
                                     const PacketDistance& metric);

/// Observability for one optimized matrix build (bench + gateway metrics).
struct DistanceMatrixStats {
  size_t packets = 0;
  size_t pairs = 0;  ///< packet pairs evaluated (n*(n-1)/2)
  /// Distinct interned rline/cookie/body strings across the sample. The gap
  /// between 3*packets and this is the duplication the caches exploit.
  size_t distinct_content_strings = 0;
  size_t distinct_hosts = 0;
  /// One singleton compression per distinct content string (the C(x) pass).
  size_t singleton_compressions = 0;
  /// Content-pair NCD probes served from the shared cache vs computed fresh
  /// (a computation is one full compression of a pair concatenation).
  uint64_t ncd_pair_hits = 0;
  uint64_t ncd_pairs_computed = 0;
  /// Distinct host pairs whose edit distance was actually computed.
  uint64_t host_pairs_computed = 0;
  /// Retrain stage wall times (steady-clock ns), filled where each stage
  /// runs: the matrix builder stamps distance_build_ns, RunClustering stamps
  /// cluster_ns (dendrogram build + cut), RunPipeline stamps siggen_ns. The
  /// trainer exports these as trainer.stage_*_ns histograms, so a slow
  /// retrain is attributable to a stage without re-timing anything.
  uint64_t distance_build_ns = 0;
  uint64_t cluster_ns = 0;
  uint64_t siggen_ns = 0;

  double ncd_hit_rate() const {
    uint64_t total = ncd_pair_hits + ncd_pairs_computed;
    return total == 0 ? 0.0
                      : static_cast<double>(ncd_pair_hits) /
                            static_cast<double>(total);
  }
};

/// Optimized matrix builder — the training hot path. Per-field strings are
/// interned first (ad-module templates make duplicates ubiquitous), all
/// singleton compressed sizes are precomputed in one parallel pass, NCD is
/// computed once per distinct unordered string pair through a sharded
/// thread-shared cache, and NormalizedEditDistance is memoized over distinct
/// host pairs. Rows are claimed in chunks off an atomic cursor, so workers
/// whose rows hit the caches steal more work. The distance is a pure
/// symmetric function, so the result is bit-identical to the serial
/// uncached path — asserted by tests. `num_threads` 0 = hardware
/// concurrency; `stats`, when non-null, receives cache effectiveness
/// counters.
DistanceMatrix ComputeDistanceMatrixParallel(
    const std::vector<HttpPacket>& packets, const compress::Compressor* compressor,
    const DistanceOptions& options, unsigned num_threads = 0,
    DistanceMatrixStats* stats = nullptr);

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_DISTANCE_H_
