#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "compress/ncd.h"
#include "util/rng.h"

namespace leakdet::core {

StatusOr<ClusteringResult> RunClustering(
    const std::vector<HttpPacket>& suspicious,
    const std::vector<HttpPacket>& normal, const PipelineOptions& options) {
  if (suspicious.empty()) {
    return Status::InvalidArgument("suspicious group is empty");
  }
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }

  Rng rng(options.seed);
  ClusteringResult result;

  // 1. Sample N suspicious packets (without replacement).
  size_t n = std::min(options.sample_size, suspicious.size());
  result.sampled_indices = rng.SampleWithoutReplacement(suspicious.size(), n);
  std::sort(result.sampled_indices.begin(), result.sampled_indices.end());
  result.sample.reserve(n);
  for (size_t idx : result.sampled_indices) {
    result.sample.push_back(suspicious[idx]);
  }

  // 2. Pairwise HTTP packet distances (§IV-B/C), parallel over rows.
  LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<compress::Compressor> compressor,
                           compress::MakeCompressor(options.compressor));
  DistanceMatrix matrix =
      ComputeDistanceMatrixParallel(result.sample, compressor.get(),
                                    options.distance, options.num_threads,
                                    &result.distance_stats);

  // 3. Group-average hierarchical clustering (§IV-D) and threshold cut.
  const auto cluster_start = std::chrono::steady_clock::now();
  Dendrogram dendrogram = ClusterGroupAverage(matrix);
  result.merge_heights.reserve(dendrogram.merges().size());
  for (const MergeStep& m : dendrogram.merges()) {
    result.merge_heights.push_back(m.height);
  }
  result.clusters = dendrogram.CutAtHeight(options.cut_height);
  result.distance_stats.cluster_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - cluster_start)
          .count());

  // 4. Sample a normal corpus for signature screening.
  if (!normal.empty() && options.normal_corpus_size > 0) {
    size_t m = std::min(options.normal_corpus_size, normal.size());
    for (size_t idx : rng.SampleWithoutReplacement(normal.size(), m)) {
      result.normal_corpus.push_back(PacketContent(normal[idx]));
    }
  }
  return result;
}

StatusOr<PipelineResult> RunPipeline(const std::vector<HttpPacket>& suspicious,
                                     const std::vector<HttpPacket>& normal,
                                     const PipelineOptions& options) {
  LEAKDET_ASSIGN_OR_RETURN(ClusteringResult clustering,
                           RunClustering(suspicious, normal, options));

  PipelineResult result;
  result.sampled_indices = std::move(clustering.sampled_indices);
  result.clusters = clustering.clusters;
  result.merge_heights = std::move(clustering.merge_heights);
  result.distance_stats = clustering.distance_stats;

  // 5. Conjunction signatures, one per cluster (§IV-E).
  const auto siggen_start = std::chrono::steady_clock::now();
  SignatureGenerator generator(options.siggen);
  result.signatures =
      generator.Generate(clustering.sample, clustering.clusters,
                         clustering.normal_corpus, &result.cluster_reports);
  result.distance_stats.siggen_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - siggen_start)
          .count());
  return result;
}

StatusOr<BayesPipelineResult> RunBayesPipeline(
    const std::vector<HttpPacket>& suspicious,
    const std::vector<HttpPacket>& normal,
    const BayesPipelineOptions& options) {
  LEAKDET_ASSIGN_OR_RETURN(ClusteringResult clustering,
                           RunClustering(suspicious, normal, options.base));

  BayesPipelineResult result;
  result.sampled_indices = std::move(clustering.sampled_indices);
  result.clusters = clustering.clusters;

  BayesSignatureGenerator generator(options.siggen);
  result.signatures = generator.Generate(
      clustering.sample, clustering.clusters, clustering.normal_corpus);
  return result;
}

}  // namespace leakdet::core
