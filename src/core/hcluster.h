#ifndef LEAKDET_CORE_HCLUSTER_H_
#define LEAKDET_CORE_HCLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"

namespace leakdet::core {

/// One agglomeration step. Node ids: 0..n-1 are the input points (leaves);
/// the k-th merge (k = 0..n-2) creates internal node n+k.
struct MergeStep {
  int32_t left;
  int32_t right;
  double height;  ///< group-average distance between the merged clusters
  int32_t size;   ///< number of leaves under the new node
};

/// The full merge tree produced by hierarchical clustering (§IV-D iterates
/// "until C has one cluster"; signature generation then walks this tree).
class Dendrogram {
 public:
  Dendrogram(size_t num_leaves, std::vector<MergeStep> merges);

  size_t num_leaves() const { return num_leaves_; }
  const std::vector<MergeStep>& merges() const { return merges_; }

  /// Leaf ids under `node` (a leaf id or internal id n+k).
  std::vector<int32_t> LeavesUnder(int32_t node) const;

  /// Flat clusters obtained by applying every merge with height <= `height`.
  /// Each cluster lists its leaf ids in increasing order; clusters are
  /// ordered by their smallest leaf.
  std::vector<std::vector<int32_t>> CutAtHeight(double height) const;

  /// Flat clusters obtained by stopping when exactly `k` clusters remain
  /// (k in [1, num_leaves]).
  std::vector<std::vector<int32_t>> CutIntoK(size_t k) const;

  /// Cophenetic distance between leaves x and y: the height of their lowest
  /// common ancestor merge. Used by clustering-quality diagnostics.
  double CopheneticDistance(int32_t x, int32_t y) const;

 private:
  std::vector<std::vector<int32_t>> CutAfterMerges(size_t num_merges) const;

  size_t num_leaves_;
  std::vector<MergeStep> merges_;
};

/// Group-average (UPGMA) agglomerative clustering over a precomputed
/// distance matrix, the procedure of §IV-D: start from singleton clusters
/// and repeatedly merge the closest pair under
///   d_group(Cx, Cy) = (1 / |Cx||Cy|) * sum_{px in Cx} sum_{py in Cy} d_pkt.
/// Implemented with the nearest-neighbor-chain algorithm: group average is
/// Lance–Williams reducible, so following chains of nearest neighbors until
/// a reciprocal pair is found, merging it, and sorting the recorded merges
/// by height yields the same dendrogram as the greedy closest-pair loop in
/// O(n²) time instead of O(n³). Fully deterministic: chains are seeded at
/// the lowest active slot and nearest-neighbor ties prefer the lowest slot
/// index; equal-height merges keep their discovery order (stable sort).
Dendrogram ClusterGroupAverage(const DistanceMatrix& distances);

/// The O(n³) greedy closest-pair implementation (scan all active pairs,
/// merge the minimum, Lance–Williams update). Kept as the oracle the
/// NN-chain implementation is property-tested against; not used on the
/// training path.
Dendrogram ClusterGroupAverageNaive(const DistanceMatrix& distances);

}  // namespace leakdet::core

#endif  // LEAKDET_CORE_HCLUSTER_H_
