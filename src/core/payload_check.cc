#include "core/payload_check.h"

#include <algorithm>

#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/xor_obfuscate.h"
#include "http/url.h"
#include "util/strutil.h"

namespace leakdet::core {

std::string_view SensitiveTypeName(SensitiveType type) {
  switch (type) {
    case SensitiveType::kAndroidId:
      return "ANDROID_ID";
    case SensitiveType::kAndroidIdMd5:
      return "ANDROID_ID MD5";
    case SensitiveType::kAndroidIdSha1:
      return "ANDROID_ID SHA1";
    case SensitiveType::kCarrier:
      return "CARRIER";
    case SensitiveType::kImei:
      return "IMEI";
    case SensitiveType::kImeiMd5:
      return "IMEI MD5";
    case SensitiveType::kImeiSha1:
      return "IMEI SHA1";
    case SensitiveType::kImsi:
      return "IMSI";
    case SensitiveType::kSimSerial:
      return "SIM Serial";
  }
  return "UNKNOWN";
}

PayloadCheck::PayloadCheck(const std::vector<DeviceTokens>& devices,
                           const std::vector<std::string>& known_xor_keys) {
  auto add = [this](std::string needle, SensitiveType type) {
    if (needle.empty()) return;
    needles_.push_back(std::move(needle));
    needle_type_.push_back(type);
  };
  for (const DeviceTokens& d : devices) {
    // Ciphertexts under known obfuscation keys (invertible encodings count
    // as the raw identifier category).
    for (const std::string& key : known_xor_keys) {
      if (key.empty()) continue;
      if (!d.imei.empty()) {
        add(crypto::XorObfuscateHex(d.imei, key), SensitiveType::kImei);
      }
      if (!d.imsi.empty()) {
        add(crypto::XorObfuscateHex(d.imsi, key), SensitiveType::kImsi);
      }
      if (!d.sim_serial.empty()) {
        add(crypto::XorObfuscateHex(d.sim_serial, key),
            SensitiveType::kSimSerial);
      }
      if (!d.android_id.empty()) {
        add(crypto::XorObfuscateHex(AsciiToLower(d.android_id), key),
            SensitiveType::kAndroidId);
      }
    }
    // Raw identifiers. Hex identifiers are matched in both cases; digit
    // identifiers have a single representation.
    add(AsciiToLower(d.android_id), SensitiveType::kAndroidId);
    add(AsciiToUpper(d.android_id), SensitiveType::kAndroidId);
    add(d.imei, SensitiveType::kImei);
    add(d.imsi, SensitiveType::kImsi);
    add(d.sim_serial, SensitiveType::kSimSerial);
    // Hash digests of the raw identifier strings, both hex cases. Ad modules
    // in the wild hash the canonical (lowercase for hex IDs) form.
    if (!d.android_id.empty()) {
      std::string canon = AsciiToLower(d.android_id);
      add(crypto::Md5Hex(canon), SensitiveType::kAndroidIdMd5);
      add(crypto::Md5HexUpper(canon), SensitiveType::kAndroidIdMd5);
      add(crypto::Sha1Hex(canon), SensitiveType::kAndroidIdSha1);
      add(crypto::Sha1HexUpper(canon), SensitiveType::kAndroidIdSha1);
    }
    if (!d.imei.empty()) {
      add(crypto::Md5Hex(d.imei), SensitiveType::kImeiMd5);
      add(crypto::Md5HexUpper(d.imei), SensitiveType::kImeiMd5);
      add(crypto::Sha1Hex(d.imei), SensitiveType::kImeiSha1);
      add(crypto::Sha1HexUpper(d.imei), SensitiveType::kImeiSha1);
    }
    // Carrier name: raw bytes and the percent-encoded form that appears in
    // query strings ("NTT%20DOCOMO").
    if (!d.carrier.empty()) {
      add(d.carrier, SensitiveType::kCarrier);
      std::string encoded = http::PercentEncode(d.carrier);
      if (encoded != d.carrier) add(encoded, SensitiveType::kCarrier);
    }
  }
  automaton_ = std::make_unique<match::AhoCorasick>(needles_);
}

std::vector<SensitiveType> PayloadCheck::Check(const HttpPacket& packet) const {
  std::string content = PacketContent(packet);
  std::vector<bool> seen(needles_.size(), false);
  automaton_->MarkPresent(content, &seen);
  bool found[kNumSensitiveTypes] = {};
  for (size_t i = 0; i < needles_.size(); ++i) {
    if (seen[i]) found[static_cast<int>(needle_type_[i])] = true;
  }
  std::vector<SensitiveType> types;
  for (int t = 0; t < kNumSensitiveTypes; ++t) {
    if (found[t]) types.push_back(static_cast<SensitiveType>(t));
  }
  return types;
}

bool PayloadCheck::IsSensitive(const HttpPacket& packet) const {
  return automaton_->AnyMatch(PacketContent(packet));
}

void PayloadCheck::Split(const std::vector<HttpPacket>& packets,
                         std::vector<HttpPacket>* suspicious,
                         std::vector<HttpPacket>* normal) const {
  for (const HttpPacket& p : packets) {
    if (IsSensitive(p)) {
      suspicious->push_back(p);
    } else {
      normal->push_back(p);
    }
  }
}

}  // namespace leakdet::core
