#include "core/hcluster.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace leakdet::core {

Dendrogram::Dendrogram(size_t num_leaves, std::vector<MergeStep> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges)) {
  assert(num_leaves_ == 0 || merges_.size() == num_leaves_ - 1);
}

std::vector<int32_t> Dendrogram::LeavesUnder(int32_t node) const {
  std::vector<int32_t> leaves;
  std::vector<int32_t> stack{node};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    if (v < static_cast<int32_t>(num_leaves_)) {
      leaves.push_back(v);
    } else {
      const MergeStep& m = merges_[static_cast<size_t>(v) - num_leaves_];
      stack.push_back(m.left);
      stack.push_back(m.right);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  return leaves;
}

std::vector<std::vector<int32_t>> Dendrogram::CutAfterMerges(
    size_t num_merges) const {
  // Union-find over leaves, applying the first `num_merges` merges.
  std::vector<int32_t> parent(num_leaves_ + num_merges);
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<int32_t>(i);
  }
  auto find = [&parent](int32_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t k = 0; k < num_merges; ++k) {
    int32_t node = static_cast<int32_t>(num_leaves_ + k);
    parent[static_cast<size_t>(find(merges_[k].left))] = node;
    parent[static_cast<size_t>(find(merges_[k].right))] = node;
  }
  // Group leaves by root.
  std::vector<std::vector<int32_t>> clusters;
  std::vector<int32_t> root_to_cluster(parent.size(), -1);
  for (size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    int32_t r = find(static_cast<int32_t>(leaf));
    if (root_to_cluster[static_cast<size_t>(r)] < 0) {
      root_to_cluster[static_cast<size_t>(r)] =
          static_cast<int32_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<size_t>(root_to_cluster[static_cast<size_t>(r)])]
        .push_back(static_cast<int32_t>(leaf));
  }
  return clusters;
}

std::vector<std::vector<int32_t>> Dendrogram::CutAtHeight(
    double height) const {
  size_t k = 0;
  // Group-average merges are monotone non-decreasing in height, so a prefix
  // of merges is exactly the set at or below the threshold.
  while (k < merges_.size() && merges_[k].height <= height) ++k;
  return CutAfterMerges(k);
}

std::vector<std::vector<int32_t>> Dendrogram::CutIntoK(size_t k) const {
  assert(k >= 1 && k <= num_leaves_);
  return CutAfterMerges(num_leaves_ - k);
}

double Dendrogram::CopheneticDistance(int32_t x, int32_t y) const {
  if (x == y) return 0.0;
  // Walk merges in order; the first merge uniting x's and y's components is
  // their lowest common ancestor.
  std::vector<int32_t> comp(num_leaves_ + merges_.size());
  for (size_t i = 0; i < comp.size(); ++i) comp[i] = static_cast<int32_t>(i);
  auto find = [&comp](int32_t v) {
    while (comp[static_cast<size_t>(v)] != v) {
      comp[static_cast<size_t>(v)] =
          comp[static_cast<size_t>(comp[static_cast<size_t>(v)])];
      v = comp[static_cast<size_t>(v)];
    }
    return v;
  };
  for (size_t k = 0; k < merges_.size(); ++k) {
    int32_t node = static_cast<int32_t>(num_leaves_ + k);
    comp[static_cast<size_t>(find(merges_[k].left))] = node;
    comp[static_cast<size_t>(find(merges_[k].right))] = node;
    if (find(x) == find(y)) return merges_[k].height;
  }
  return std::numeric_limits<double>::infinity();
}

Dendrogram ClusterGroupAverage(const DistanceMatrix& distances) {
  const size_t n = distances.size();
  if (n == 0) return Dendrogram(0, {});
  if (n == 1) return Dendrogram(1, {});

  // Active-cluster working matrix (full square for O(1) access).
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = d[j * n + i] = distances.at(i, j);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<int32_t> node_id(n);   // dendrogram node for slot i
  std::vector<int32_t> size(n, 1);   // leaves under slot i
  for (size_t i = 0; i < n; ++i) node_id[i] = static_cast<int32_t>(i);

  std::vector<MergeStep> merges;
  merges.reserve(n - 1);
  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i * n + j] < best) {
          best = d[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; Lance–Williams group-average update:
    // d(A∪B, K) = (|A| d(A,K) + |B| d(B,K)) / (|A| + |B|).
    int32_t new_node = static_cast<int32_t>(n + step);
    merges.push_back(
        MergeStep{node_id[bi], node_id[bj], best, size[bi] + size[bj]});
    double wa = static_cast<double>(size[bi]);
    double wb = static_cast<double>(size[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double merged = (wa * d[bi * n + k] + wb * d[bj * n + k]) / (wa + wb);
      d[bi * n + k] = d[k * n + bi] = merged;
    }
    active[bj] = false;
    node_id[bi] = new_node;
    size[bi] += size[bj];
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace leakdet::core
