#include "core/hcluster.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace leakdet::core {

Dendrogram::Dendrogram(size_t num_leaves, std::vector<MergeStep> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges)) {
  assert(num_leaves_ == 0 || merges_.size() == num_leaves_ - 1);
}

std::vector<int32_t> Dendrogram::LeavesUnder(int32_t node) const {
  std::vector<int32_t> leaves;
  std::vector<int32_t> stack{node};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    if (v < static_cast<int32_t>(num_leaves_)) {
      leaves.push_back(v);
    } else {
      const MergeStep& m = merges_[static_cast<size_t>(v) - num_leaves_];
      stack.push_back(m.left);
      stack.push_back(m.right);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  return leaves;
}

std::vector<std::vector<int32_t>> Dendrogram::CutAfterMerges(
    size_t num_merges) const {
  // Union-find over leaves, applying the first `num_merges` merges.
  std::vector<int32_t> parent(num_leaves_ + num_merges);
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<int32_t>(i);
  }
  auto find = [&parent](int32_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t k = 0; k < num_merges; ++k) {
    int32_t node = static_cast<int32_t>(num_leaves_ + k);
    parent[static_cast<size_t>(find(merges_[k].left))] = node;
    parent[static_cast<size_t>(find(merges_[k].right))] = node;
  }
  // Group leaves by root.
  std::vector<std::vector<int32_t>> clusters;
  std::vector<int32_t> root_to_cluster(parent.size(), -1);
  for (size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    int32_t r = find(static_cast<int32_t>(leaf));
    if (root_to_cluster[static_cast<size_t>(r)] < 0) {
      root_to_cluster[static_cast<size_t>(r)] =
          static_cast<int32_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<size_t>(root_to_cluster[static_cast<size_t>(r)])]
        .push_back(static_cast<int32_t>(leaf));
  }
  return clusters;
}

std::vector<std::vector<int32_t>> Dendrogram::CutAtHeight(
    double height) const {
  size_t k = 0;
  // Group-average merges are monotone non-decreasing in height, so a prefix
  // of merges is exactly the set at or below the threshold.
  while (k < merges_.size() && merges_[k].height <= height) ++k;
  return CutAfterMerges(k);
}

std::vector<std::vector<int32_t>> Dendrogram::CutIntoK(size_t k) const {
  assert(k >= 1 && k <= num_leaves_);
  return CutAfterMerges(num_leaves_ - k);
}

double Dendrogram::CopheneticDistance(int32_t x, int32_t y) const {
  if (x == y) return 0.0;
  // Walk merges in order; the first merge uniting x's and y's components is
  // their lowest common ancestor.
  std::vector<int32_t> comp(num_leaves_ + merges_.size());
  for (size_t i = 0; i < comp.size(); ++i) comp[i] = static_cast<int32_t>(i);
  auto find = [&comp](int32_t v) {
    while (comp[static_cast<size_t>(v)] != v) {
      comp[static_cast<size_t>(v)] =
          comp[static_cast<size_t>(comp[static_cast<size_t>(v)])];
      v = comp[static_cast<size_t>(v)];
    }
    return v;
  };
  for (size_t k = 0; k < merges_.size(); ++k) {
    int32_t node = static_cast<int32_t>(num_leaves_ + k);
    comp[static_cast<size_t>(find(merges_[k].left))] = node;
    comp[static_cast<size_t>(find(merges_[k].right))] = node;
    if (find(x) == find(y)) return merges_[k].height;
  }
  return std::numeric_limits<double>::infinity();
}

Dendrogram ClusterGroupAverageNaive(const DistanceMatrix& distances) {
  const size_t n = distances.size();
  if (n == 0) return Dendrogram(0, {});
  if (n == 1) return Dendrogram(1, {});

  // Active-cluster working matrix (full square for O(1) access).
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = d[j * n + i] = distances.at(i, j);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<int32_t> node_id(n);   // dendrogram node for slot i
  std::vector<int32_t> size(n, 1);   // leaves under slot i
  for (size_t i = 0; i < n; ++i) node_id[i] = static_cast<int32_t>(i);

  std::vector<MergeStep> merges;
  merges.reserve(n - 1);
  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i * n + j] < best) {
          best = d[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; Lance–Williams group-average update:
    // d(A∪B, K) = (|A| d(A,K) + |B| d(B,K)) / (|A| + |B|).
    int32_t new_node = static_cast<int32_t>(n + step);
    merges.push_back(
        MergeStep{node_id[bi], node_id[bj], best, size[bi] + size[bj]});
    double wa = static_cast<double>(size[bi]);
    double wb = static_cast<double>(size[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double merged = (wa * d[bi * n + k] + wb * d[bj * n + k]) / (wa + wb);
      d[bi * n + k] = d[k * n + bi] = merged;
    }
    active[bj] = false;
    node_id[bi] = new_node;
    size[bi] += size[bj];
  }
  return Dendrogram(n, std::move(merges));
}

namespace {

/// A merge recorded in NN-chain discovery order: the two clusters are named
/// by a contained leaf (slot i's cluster always contains leaf i, because
/// merges fold the higher slot into the lower one).
struct RawMerge {
  int32_t a;
  int32_t b;
  double height;
};

}  // namespace

Dendrogram ClusterGroupAverage(const DistanceMatrix& distances) {
  const size_t n = distances.size();
  if (n == 0) return Dendrogram(0, {});
  if (n == 1) return Dendrogram(1, {});

  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = d[j * n + i] = distances.at(i, j);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<int32_t> size(n, 1);  // leaves under slot i

  std::vector<RawMerge> raw;
  raw.reserve(n - 1);
  std::vector<size_t> chain;
  chain.reserve(n);
  size_t seed = 0;  // lowest slot that may still be active

  for (size_t step = 0; step + 1 < n; ++step) {
    if (chain.empty()) {
      while (!active[seed]) ++seed;
      chain.push_back(seed);
    }
    // Extend the chain with nearest neighbors until it folds back on
    // itself. Reducibility guarantees chain distances strictly decrease, so
    // this terminates, and that the chain stays valid across merges.
    for (;;) {
      size_t top = chain.back();
      double best = std::numeric_limits<double>::infinity();
      size_t next = n;
      for (size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        if (d[top * n + j] < best) {
          best = d[top * n + j];
          next = j;
        }
      }
      // On a tie with the predecessor, fold back (guarantees termination
      // and keeps the result independent of the lowest-index tie winner).
      if (chain.size() >= 2) {
        size_t prev = chain[chain.size() - 2];
        if (d[top * n + prev] == best) next = prev;
      }
      if (chain.size() >= 2 && next == chain[chain.size() - 2]) break;
      chain.push_back(next);
    }

    size_t a = chain.back();
    chain.pop_back();
    size_t b = chain.back();
    chain.pop_back();
    size_t bi = std::min(a, b);
    size_t bj = std::max(a, b);
    raw.push_back(RawMerge{static_cast<int32_t>(bi), static_cast<int32_t>(bj),
                           d[bi * n + bj]});
    // Identical Lance–Williams expression to the naive path (wa is always
    // the lower slot's size), so matching merge orders give matching bits.
    double wa = static_cast<double>(size[bi]);
    double wb = static_cast<double>(size[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double merged = (wa * d[bi * n + k] + wb * d[bj * n + k]) / (wa + wb);
      d[bi * n + k] = d[k * n + bi] = merged;
    }
    active[bj] = false;
    size[bi] += size[bj];
  }

  // NN-chain discovers merges out of height order; sorting restores the
  // greedy order. Group-average heights are monotone along tree paths, so a
  // stable sort never places a parent before its children (children are
  // discovered first and have height <= parent's).
  std::stable_sort(
      raw.begin(), raw.end(),
      [](const RawMerge& x, const RawMerge& y) { return x.height < y.height; });

  // Relabel to dendrogram node ids via union-find over leaves.
  std::vector<int32_t> parent(n);
  std::vector<int32_t> node(n);   // dendrogram node for the set's root
  std::vector<int32_t> csize(n);  // leaves under the set's root
  for (size_t i = 0; i < n; ++i) {
    parent[i] = node[i] = static_cast<int32_t>(i);
    csize[i] = 1;
  }
  auto find = [&parent](int32_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  std::vector<MergeStep> merges;
  merges.reserve(n - 1);
  for (size_t k = 0; k < raw.size(); ++k) {
    int32_t ra = find(raw[k].a);
    int32_t rb = find(raw[k].b);
    int32_t left = node[static_cast<size_t>(ra)];
    int32_t right = node[static_cast<size_t>(rb)];
    if (left > right) std::swap(left, right);
    int32_t merged_size =
        csize[static_cast<size_t>(ra)] + csize[static_cast<size_t>(rb)];
    merges.push_back(MergeStep{left, right, raw[k].height, merged_size});
    parent[static_cast<size_t>(ra)] = rb;
    node[static_cast<size_t>(rb)] = static_cast<int32_t>(n + k);
    csize[static_cast<size_t>(rb)] = merged_size;
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace leakdet::core
