#include "core/packet.h"

namespace leakdet::core {

HttpPacket MakePacket(uint32_t app_id, const net::Endpoint& destination,
                      const http::HttpRequest& request) {
  HttpPacket p;
  p.app_id = app_id;
  p.destination = destination;
  p.request_line = request.RequestLine();
  p.cookie = std::string(request.cookie());
  p.body = request.body();
  return p;
}

std::string PacketContent(const HttpPacket& packet) {
  std::string content;
  content.reserve(packet.request_line.size() + packet.cookie.size() +
                  packet.body.size() + 2);
  content += packet.request_line;
  content += '\n';
  content += packet.cookie;
  content += '\n';
  content += packet.body;
  return content;
}

std::vector<std::string> PacketContents(
    const std::vector<HttpPacket>& packets) {
  std::vector<std::string> contents;
  contents.reserve(packets.size());
  for (const HttpPacket& p : packets) contents.push_back(PacketContent(p));
  return contents;
}

}  // namespace leakdet::core
